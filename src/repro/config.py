"""Configuration dataclasses shared across the library.

Two configuration objects flow through the system:

* :class:`SplitConfig` — stopping rules and search limits that *define the
  target tree*.  Every algorithm (reference builder, BOAT, RainForest) must
  receive the same :class:`SplitConfig` to produce the same tree; it is part
  of the tree's identity.
* :class:`BoatConfig` — knobs of the BOAT algorithm itself (sample size,
  bootstrap repetitions, bucket budget...).  These affect only *how fast*
  BOAT converges, never which tree it outputs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

DEFAULT_BATCH_ROWS = 65536

#: Valid values for BoatConfig.parallel_backend (see :mod:`repro.parallel`).
PARALLEL_BACKENDS = ("auto", "process", "thread", "serial")

#: Valid values for BoatConfig.kernel_backend (see :mod:`repro.kernels`).
KERNEL_BACKENDS = ("numpy", "python")


@dataclass(frozen=True)
class SplitConfig:
    """Stopping rules and search limits that define the target tree.

    Attributes:
        min_samples_split: a node whose family is smaller than this becomes
            a leaf.  Must be at least 2.
        min_samples_leaf: a candidate split is only admissible if both
            children receive at least this many tuples.
        max_depth: nodes at this depth become leaves (root has depth 0).
            ``None`` means unbounded.
        max_categorical_exhaustive: categorical domains up to this size are
            searched exhaustively over all subsets; larger domains use the
            deterministic sorted-by-class-probability search (exact for
            two-class impurity problems, a documented heuristic otherwise).
        split_sample_rows: when set, impurity-based split *search* at a
            node with more than this many family rows evaluates candidates
            on a deterministic stride subsample of this size instead of
            the full family (Kumar & Edakunni's sampling-based split
            finding).  The chosen split is still applied to the full
            family.  Unlike every other knob on this dataclass, sampling
            changes which tree is produced — which is why it lives here:
            it is part of the tree's identity, and every consumer
            (reference builder, BOAT finalization, rebuilds) must agree on
            it to agree on the tree.  The subsample is a pure function of
            the family (no RNG), so determinism and the byte-identity
            guarantees are preserved *for a given config*.  Ignored by
            QUEST, whose split points come from sufficient statistics
            rather than candidate enumeration.  ``None`` (default)
            searches exactly.
    """

    min_samples_split: int = 2
    min_samples_leaf: int = 1
    max_depth: int | None = None
    max_categorical_exhaustive: int = 12
    split_sample_rows: int | None = None

    def __post_init__(self) -> None:
        if self.min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if self.min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        if self.max_depth is not None and self.max_depth < 0:
            raise ValueError("max_depth must be >= 0 or None")
        if self.max_categorical_exhaustive < 1:
            raise ValueError("max_categorical_exhaustive must be >= 1")
        if self.split_sample_rows is not None and self.split_sample_rows < 2:
            raise ValueError("split_sample_rows must be >= 2 or None")


@dataclass(frozen=True)
class BoatConfig:
    """Knobs of the BOAT algorithm (performance, never output).

    Attributes:
        sample_size: size of the in-memory sample D' drawn in the sampling
            phase (the paper used 200 000).
        bootstrap_repetitions: number b of bootstrap trees (paper: 20).
        bootstrap_subsample: size of each bootstrap sample drawn with
            replacement from D' (paper: 50 000).  ``None`` means ``|D'|``.
        interval_widening: fraction of the bootstrap split-point range by
            which the confidence interval is widened on each side.  Wider
            intervals hold more tuples in memory but fail less often.
        interval_impurity_slack: additionally widen the interval to cover
            every sample candidate whose impurity is within
            ``slack * (node impurity - best impurity)`` of the sample
            best.  Flat impurity plateaus (the paper's instability
            scenario, pronounced for Function 7's linear class boundary)
            otherwise sit right at the corner bound's resolution limit and
            cause false-alarm rebuilds.
        inmemory_threshold: families at most this large are finished by the
            in-memory reference builder instead of further out-of-core
            processing (the paper's 60 MB switch).
        bucket_budget: target number of discretization buckets per numeric
            attribute per node for the Lemma 3.1 failure check.
        spill_threshold_rows: per-node stores (held tuples, frontier
            families) buffer at most this many rows in RAM and spill to
            temporary files beyond it — the paper's "writes temporary
            files to be truly scalable".
        seed: seed for the sampling phase RNG.  Changing it changes speed
            (which subtrees need rebuilding), never the output tree.
        batch_rows: scan batch granularity.
        n_workers: worker count for the parallel phases (bootstrap tree
            growing, cleanup scan, frontier prefetch).  ``1`` runs
            everything serially; ``0`` uses one worker per CPU.  Like
            every BOAT knob this affects speed only — the output tree is
            bit-identical at any worker count.
        parallel_backend: ``"auto"`` (process pool when ``n_workers`` > 1),
            ``"process"``, ``"thread"``, or ``"serial"``.  Pools that fail
            to start degrade to serial execution; see
            :class:`repro.parallel.WorkerPool`.
        kernel_backend: ``"numpy"`` (vectorized columnar kernels, the
            fast path) or ``"python"`` (the per-row reference
            implementation; see :mod:`repro.kernels`).  Both backends
            produce bit-identical trees — the kernel-oracle differential
            suite enforces it — so this knob only trades speed for
            per-row auditability.
        trace: record a phase-scoped trace of the build.  When no tracer
            is passed to :func:`repro.core.boat_build` explicitly, this
            makes the driver create one and return its
            :class:`~repro.observability.TraceReport` on the build report.
            Off by default: the disabled path is a no-op object with no
            measurable cost on the scan path.
        checkpoint_dir: when set, the build becomes crash-safe: the
            skeleton is persisted after the sampling phase, cleanup-scan
            progress (scan offset, per-node statistics, durable spill
            manifest) every ``checkpoint_every_batches`` batches, and a
            killed build can be resumed with
            :func:`repro.recovery.resume_build` (CLI ``--resume``),
            producing a byte-identical tree.  Like every other knob this
            never changes the output tree.
        checkpoint_every_batches: cleanup-scan batches between progress
            checkpoints.  Smaller values shrink the re-read tail after a
            crash at the cost of more checkpoint writes.
        scan_retries: absorb up to this many transient ``IOError``s per
            scan by re-reading from the last good offset with bounded
            exponential backoff (0 disables retrying; failures then
            surface immediately as :class:`~repro.exceptions.StorageError`).
        sql_pushdown: when the training table is a
            :class:`~repro.storage.sql.SqlTable`, run the cleanup scan's
            statistics as grouped aggregation queries inside the database
            and export only held/family rows (see docs/SQL.md).  A
            placement/speed knob, never the tree: the output is
            byte-identical with it on or off, and it is ignored for
            non-SQL tables, sub-range scans, and checkpointed builds
            (which need row-granular scan progress).
        scan_retry_base_delay_s: backoff before the first retry; each
            subsequent retry doubles it, capped at
            ``scan_retry_max_delay_s``.
        scan_retry_max_delay_s: upper bound on a single backoff sleep.
    """

    sample_size: int = 20000
    bootstrap_repetitions: int = 20
    bootstrap_subsample: int | None = None
    interval_widening: float = 0.05
    interval_impurity_slack: float = 0.05
    inmemory_threshold: int = 0
    bucket_budget: int = 64
    spill_threshold_rows: int = 1 << 20
    seed: int = 42
    batch_rows: int = DEFAULT_BATCH_ROWS
    n_workers: int = 1
    parallel_backend: str = "auto"
    kernel_backend: str = "numpy"
    trace: bool = False
    checkpoint_dir: str | None = None
    checkpoint_every_batches: int = 16
    scan_retries: int = 0
    scan_retry_base_delay_s: float = 0.05
    scan_retry_max_delay_s: float = 2.0
    sql_pushdown: bool = False

    def __post_init__(self) -> None:
        if self.sample_size < 1:
            raise ValueError("sample_size must be >= 1")
        if self.bootstrap_repetitions < 2:
            raise ValueError("bootstrap_repetitions must be >= 2")
        if self.bootstrap_subsample is not None and self.bootstrap_subsample < 1:
            raise ValueError("bootstrap_subsample must be >= 1 or None")
        if self.interval_widening < 0:
            raise ValueError("interval_widening must be >= 0")
        if self.interval_impurity_slack < 0:
            raise ValueError("interval_impurity_slack must be >= 0")
        if self.inmemory_threshold < 0:
            raise ValueError("inmemory_threshold must be >= 0")
        if self.bucket_budget < 2:
            raise ValueError("bucket_budget must be >= 2")
        if self.spill_threshold_rows < 1:
            raise ValueError("spill_threshold_rows must be >= 1")
        if self.batch_rows < 1:
            raise ValueError("batch_rows must be >= 1")
        if self.n_workers < 0:
            raise ValueError("n_workers must be >= 0 (0 = one per CPU)")
        if self.parallel_backend not in PARALLEL_BACKENDS:
            raise ValueError(
                f"parallel_backend must be one of {PARALLEL_BACKENDS}, "
                f"got {self.parallel_backend!r}"
            )
        if self.kernel_backend not in KERNEL_BACKENDS:
            raise ValueError(
                f"kernel_backend must be one of {KERNEL_BACKENDS}, "
                f"got {self.kernel_backend!r}"
            )
        if self.checkpoint_every_batches < 1:
            raise ValueError("checkpoint_every_batches must be >= 1")
        if self.scan_retries < 0:
            raise ValueError("scan_retries must be >= 0")
        if self.scan_retry_base_delay_s < 0:
            raise ValueError("scan_retry_base_delay_s must be >= 0")
        if self.scan_retry_max_delay_s < self.scan_retry_base_delay_s:
            raise ValueError(
                "scan_retry_max_delay_s must be >= scan_retry_base_delay_s"
            )


def config_at_depth(config: SplitConfig, depth: int) -> SplitConfig:
    """Stopping rules for a subtree rooted ``depth`` levels down.

    Only ``max_depth`` is depth-relative; a subtree built separately (a
    frontier completion or a rebuild) must see its remaining budget.
    """
    if config.max_depth is None or depth == 0:
        return config
    return dataclasses.replace(config, max_depth=max(config.max_depth - depth, 0))


@dataclass(frozen=True)
class RainForestConfig:
    """Knobs of the RainForest baseline algorithms.

    Attributes:
        avc_buffer_entries: main-memory budget, counted in AVC entries
            (distinct (attribute value, class) pairs held at once).  The
            paper used 3 M entries for RF-Hybrid and 1.8 M for RF-Vertical.
        inmemory_threshold: same in-memory switch as BOAT's, for a fair
            comparison.
        batch_rows: scan batch granularity.
        kernel_backend: same switch as BOAT's — ``"numpy"`` or
            ``"python"`` (see :mod:`repro.kernels`); the AVC-set
            constructors route through the selected backend.
    """

    avc_buffer_entries: int = 3_000_000
    inmemory_threshold: int = 0
    batch_rows: int = DEFAULT_BATCH_ROWS
    kernel_backend: str = "numpy"

    def __post_init__(self) -> None:
        if self.avc_buffer_entries < 1:
            raise ValueError("avc_buffer_entries must be >= 1")
        if self.inmemory_threshold < 0:
            raise ValueError("inmemory_threshold must be >= 0")
        if self.batch_rows < 1:
            raise ValueError("batch_rows must be >= 1")
        if self.kernel_backend not in KERNEL_BACKENDS:
            raise ValueError(
                f"kernel_backend must be one of {KERNEL_BACKENDS}, "
                f"got {self.kernel_backend!r}"
            )
