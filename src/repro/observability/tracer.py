"""Phase-scoped tracing: nestable spans with I/O-counter attribution.

BOAT's headline claim — a constant number of scans over a database that
does not fit in memory — is a claim about *phases*: one scan to draw the
sample, one cleanup scan, and in-memory work everywhere else.  The raw
:class:`~repro.storage.IOStats` counters prove the total; a
:class:`Tracer` proves the attribution.  Each phase runs inside a
:class:`Span` that snapshots the experiment's I/O counters at its
boundaries (via :meth:`IOStats.delta_since`) and records wall time,
tuples/bytes read and written, full-scan and spill-file counts, plus
free-form attributes (node counts, rebuild counts, ...).

Design constraints, in order:

* **Zero-cost when off.**  A disabled tracer is the :data:`NULL_TRACER`
  singleton whose :meth:`~NullTracer.span` returns one shared no-op
  object — no allocation, no clock read, no snapshot on the hot scan
  path.
* **Deterministic modulo timestamps.**  Span names, nesting, counters
  and attributes are pure functions of the work performed, so tests can
  golden-compare every structural field
  (:meth:`Span.to_dict(include_timing=False) <Span.to_dict>`); only
  wall-clock fields vary between runs.
* **Worker merge mirrors** :meth:`IOStats.merge`.  Parallel phases give
  each worker a detached span (:meth:`Tracer.worker_span`), accumulate
  private counters into it, and attach the spans under the parent phase
  in deterministic order.  Merging is plain counter addition, hence
  associative.

The tracer's span stack is owned by the driving thread; worker threads
never touch it (they only fill detached worker spans), matching the
parallel layer's "workers compute, the parent mutates" discipline.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterator

from ..storage.io_stats import IOStats

#: Counter fields mirrored from :class:`IOStats`, in export order.
COUNTER_FIELDS = (
    "full_scans",
    "tuples_read",
    "tuples_written",
    "bytes_read",
    "bytes_written",
    "spill_files",
)

#: Schema version stamped on every exported span line.
TRACE_SCHEMA_VERSION = 1


class Span:
    """One traced phase: a named interval with counters, attributes, children.

    Use as a context manager (entered via :meth:`Tracer.span`); on exit the
    wall time and the I/O delta accumulated inside the span are recorded.
    An exception propagating out still closes the span — its status becomes
    ``"error:<ExceptionType>"`` and the exception continues unwound, so a
    trace of a failed run shows exactly which phase died.
    """

    __slots__ = (
        "name",
        "status",
        "wall_seconds",
        "full_scans",
        "tuples_read",
        "tuples_written",
        "bytes_read",
        "bytes_written",
        "spill_files",
        "attributes",
        "children",
        "_tracer",
        "_started",
        "_io_before",
    )

    def __init__(self, name: str, tracer: "Tracer | None" = None):
        self.name = name
        self.status = "open"
        self.wall_seconds = 0.0
        self.full_scans = 0
        self.tuples_read = 0
        self.tuples_written = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.spill_files = 0
        self.attributes: dict[str, Any] = {}
        self.children: list[Span] = []
        self._tracer = tracer
        self._started: float | None = None
        self._io_before: IOStats | None = None

    # -- context management --------------------------------------------------

    def __enter__(self) -> "Span":
        tracer = self._tracer
        if tracer is None:
            raise RuntimeError(f"span {self.name!r} is detached; use Tracer.span")
        tracer._push(self)
        if tracer._io is not None:
            self._io_before = tracer._io.snapshot()
        self._started = tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        self.wall_seconds += tracer._clock() - self._started
        if tracer._io is not None and self._io_before is not None:
            self.add_io(tracer._io.delta_since(self._io_before))
            self._io_before = None
        self.status = "ok" if exc_type is None else f"error:{exc_type.__name__}"
        tracer._pop(self)
        return False  # never swallow the exception

    # -- recording -----------------------------------------------------------

    def set(self, **attributes: Any) -> "Span":
        """Attach structured attributes (node counts, config echoes, ...)."""
        self.attributes.update(attributes)
        return self

    def bump(self, key: str, amount: int = 1) -> None:
        """Increment a numeric attribute (creates it at 0)."""
        self.attributes[key] = self.attributes.get(key, 0) + amount

    def add_io(self, stats: IOStats) -> None:
        """Add an I/O delta's counters into this span."""
        self.full_scans += stats.full_scans
        self.tuples_read += stats.tuples_read
        self.tuples_written += stats.tuples_written
        self.bytes_read += stats.bytes_read
        self.bytes_written += stats.bytes_written
        self.spill_files += stats.spill_files

    def merge(self, other: "Span") -> "Span":
        """Fold another span's counters into this one (returns ``self``).

        The worker-span analogue of :meth:`IOStats.merge`: counters and
        wall time add, numeric attributes add, non-numeric attributes are
        first-writer-wins.  Addition makes the operation associative, so
        any merge tree over the same spans yields the same totals.
        """
        self.wall_seconds += other.wall_seconds
        self.full_scans += other.full_scans
        self.tuples_read += other.tuples_read
        self.tuples_written += other.tuples_written
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self.spill_files += other.spill_files
        for key, value in other.attributes.items():
            mine = self.attributes.get(key)
            if isinstance(value, (int, float)) and isinstance(mine, (int, float)):
                self.attributes[key] = mine + value
            elif key not in self.attributes:
                self.attributes[key] = value
        return self

    # -- export ---------------------------------------------------------------

    @property
    def counters(self) -> dict[str, int]:
        return {field: getattr(self, field) for field in COUNTER_FIELDS}

    def find(self, name: str) -> "Span | None":
        """First span named ``name`` in this subtree, preorder."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def walk(self) -> Iterator["Span"]:
        """This span and all descendants, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self, include_timing: bool = True) -> dict:
        """Nested dict form.  ``include_timing=False`` drops every field
        that varies between otherwise identical runs, leaving only the
        golden-comparable structure."""
        out: dict[str, Any] = {"name": self.name, "status": self.status}
        if include_timing:
            out["wall_seconds"] = self.wall_seconds
        out.update(self.counters)
        out["attributes"] = dict(sorted(self.attributes.items()))
        out["children"] = [c.to_dict(include_timing) for c in self.children]
        return out

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, status={self.status!r}, "
            f"scans={self.full_scans}, children={len(self.children)})"
        )


class TraceReport:
    """A finished trace: the forest of root spans one tracer recorded."""

    def __init__(self, roots: list[Span]):
        self.roots = roots

    def find(self, name: str) -> Span | None:
        """First span named ``name`` across all roots, preorder."""
        for root in self.roots:
            found = root.find(name)
            if found is not None:
                return found
        return None

    def spans(self) -> Iterator[Span]:
        for root in self.roots:
            yield from root.walk()

    def total(self, field: str) -> int:
        """Sum a counter over root spans (children are already included)."""
        return sum(getattr(root, field) for root in self.roots)

    def to_dicts(self, include_timing: bool = True) -> list[dict]:
        return [root.to_dict(include_timing) for root in self.roots]

    def phase_summary(self) -> dict:
        """Compact per-phase breakdown for benchmark rows.

        ``{"full_scans": total, "phases": {name: {"seconds", "full_scans",
        "tuples_read", "tuples_written", "spill_files"}}}`` over the
        top-level phases (the children of the first root span, or the
        roots themselves when they have no children).
        """
        phases: list[Span] = []
        for root in self.roots:
            phases.extend(root.children or [root])
        summary: dict[str, dict] = {}
        for span in phases:
            entry = summary.setdefault(
                span.name,
                {
                    "seconds": 0.0,
                    "full_scans": 0,
                    "tuples_read": 0,
                    "tuples_written": 0,
                    "spill_files": 0,
                },
            )
            entry["seconds"] = round(entry["seconds"] + span.wall_seconds, 3)
            entry["full_scans"] += span.full_scans
            entry["tuples_read"] += span.tuples_read
            entry["tuples_written"] += span.tuples_written
            entry["spill_files"] += span.spill_files
        return {"full_scans": self.total("full_scans"), "phases": summary}


class Tracer:
    """Records a tree of phase spans against one experiment's I/O counters.

    Args:
        io_stats: the experiment's shared :class:`IOStats`; span boundaries
            snapshot it to attribute I/O per phase.  ``None`` records wall
            time and attributes only.
        clock: monotonic clock, injectable for deterministic tests.

    The span stack belongs to the thread driving the build.  Parallel
    phases use :meth:`worker_span` + :meth:`attach` instead of nesting.
    """

    enabled = True

    def __init__(
        self,
        io_stats: IOStats | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self._io = io_stats
        self._clock = clock
        self._stack: list[Span] = []
        self.roots: list[Span] = []

    def span(self, name: str, **attributes: Any) -> Span:
        """A new span to be entered with ``with``; nests under the current one."""
        span = Span(name, tracer=self)
        if attributes:
            span.set(**attributes)
        return span

    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def worker_span(self, name: str, **attributes: Any) -> Span:
        """A detached span for worker-side accounting (no clock, no stack).

        Fill it with :meth:`Span.add_io` / :meth:`Span.bump` / :meth:`Span.merge`
        as worker results arrive, then :meth:`attach` it under the running
        phase span in deterministic order.
        """
        span = Span(name, tracer=None)
        if attributes:
            span.set(**attributes)
        return span

    def attach(self, span: Span, parent: Span | None = None) -> None:
        """Adopt a detached (worker) span as a child of ``parent``.

        ``parent`` defaults to the innermost open span; with no open span
        the span becomes a root.  Attaching closes the span.
        """
        if span.status == "open":
            span.status = "ok"
        parent = parent if parent is not None else self.current()
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)

    def event(self, name: str, **attributes: Any) -> None:
        """Record a point event as a zero-duration child of the current span."""
        span = Span(name, tracer=None)
        span.status = "event"
        if attributes:
            span.set(**attributes)
        self.attach(span)

    def report(self) -> TraceReport:
        """The trace recorded so far (open spans keep accumulating)."""
        return TraceReport(list(self.roots))

    # -- stack plumbing (Span.__enter__/__exit__ only) -----------------------

    def _push(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError(
                f"span {span.name!r} closed out of order "
                f"(open: {[s.name for s in self._stack]})"
            )
        self._stack.pop()

    def __repr__(self) -> str:
        return f"Tracer(roots={len(self.roots)}, open={len(self._stack)})"


class _NullSpan:
    """The shared do-nothing span; every recording method is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attributes: Any) -> "_NullSpan":
        return self

    def bump(self, key: str, amount: int = 1) -> None:
        pass

    def add_io(self, stats: IOStats) -> None:
        pass

    def merge(self, other: "_NullSpan") -> "_NullSpan":
        return self


class NullTracer:
    """The disabled tracer: one shared instance, one shared no-op span.

    Every method returns the same singleton objects, so tracing calls on
    the hot scan path cost one attribute lookup and one call — no
    allocation, no branching at call sites.
    """

    enabled = False

    _span = _NullSpan()

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return self._span

    def current(self) -> None:
        return None

    def worker_span(self, name: str, **attributes: Any) -> _NullSpan:
        return self._span

    def attach(self, span: object, parent: object | None = None) -> None:
        pass

    def event(self, name: str, **attributes: Any) -> None:
        pass

    def report(self) -> TraceReport:
        return TraceReport([])

    def __repr__(self) -> str:
        return "NullTracer()"


#: The process-wide disabled tracer.  ``tracer or NULL_TRACER`` is the
#: idiom every traced function uses to normalize its optional argument.
NULL_TRACER = NullTracer()


def ensure_tracer(tracer: "Tracer | NullTracer | None") -> "Tracer | NullTracer":
    """Normalize an optional tracer argument to a usable object."""
    return tracer if tracer is not None else NULL_TRACER
