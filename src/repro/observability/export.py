"""Trace exporters: JSONL for machines, an indented tree for humans.

JSONL schema (one object per span, preorder, stable key order):

``{"v": 1, "id": <int>, "parent": <int | null>, "name": <str>,``
``"status": "ok" | "event" | "error:<Type>", "wall_seconds": <float>,``
``"full_scans": <int>, "tuples_read": <int>, "tuples_written": <int>,``
``"bytes_read": <int>, "bytes_written": <int>, "spill_files": <int>,``
``"attributes": {<str>: <json>}}``

Span ids are preorder positions, so two traces of the same run are
line-by-line comparable once ``wall_seconds`` is masked.  The format
round-trips: :func:`read_jsonl` rebuilds the exact
:class:`~repro.observability.tracer.TraceReport` structure.
"""

from __future__ import annotations

import json
import os
from typing import IO, Iterator

from .tracer import COUNTER_FIELDS, TRACE_SCHEMA_VERSION, Span, TraceReport


def trace_lines(report: TraceReport) -> Iterator[dict]:
    """Flatten a report into JSONL-ready dicts (preorder, ids assigned)."""
    next_id = 0

    def emit(span: Span, parent: int | None) -> Iterator[dict]:
        nonlocal next_id
        span_id = next_id
        next_id += 1
        line: dict = {
            "v": TRACE_SCHEMA_VERSION,
            "id": span_id,
            "parent": parent,
            "name": span.name,
            "status": span.status,
            "wall_seconds": round(span.wall_seconds, 6),
        }
        line.update(span.counters)
        line["attributes"] = dict(sorted(span.attributes.items()))
        yield line
        for child in span.children:
            yield from emit(child, span_id)

    for root in report.roots:
        yield from emit(root, None)


def write_jsonl(report: TraceReport, destination: str | os.PathLike | IO[str]) -> None:
    """Write a trace as JSON lines to a path or an open text stream."""
    if hasattr(destination, "write"):
        for line in trace_lines(report):
            destination.write(json.dumps(line, sort_keys=False) + "\n")
        return
    with open(os.fspath(destination), "w", encoding="utf-8") as fh:
        write_jsonl(report, fh)


def read_jsonl(source: str | os.PathLike | IO[str]) -> TraceReport:
    """Rebuild a :class:`TraceReport` from :func:`write_jsonl` output."""
    if not hasattr(source, "read"):
        with open(os.fspath(source), encoding="utf-8") as fh:
            return read_jsonl(fh)
    spans: dict[int, Span] = {}
    roots: list[Span] = []
    for raw in source:
        raw = raw.strip()
        if not raw:
            continue
        line = json.loads(raw)
        span = Span(line["name"], tracer=None)
        span.status = line["status"]
        span.wall_seconds = line["wall_seconds"]
        for field in COUNTER_FIELDS:
            setattr(span, field, line[field])
        span.attributes = dict(line["attributes"])
        spans[line["id"]] = span
        parent = line["parent"]
        if parent is None:
            roots.append(span)
        else:
            spans[parent].children.append(span)
    return TraceReport(roots)


def latency_summary(seconds: list[float] | tuple[float, ...]) -> dict:
    """Percentile summary of a latency sample, in milliseconds.

    The shared shape for serving statistics: the request batcher's
    :meth:`~repro.serve.RequestBatcher.stats`, the HTTP ``/stats``
    endpoint, and the ``bench_serving`` rows in ``bench_results.jsonl``
    all report this dict, so latency numbers are comparable across the
    stack.  Empty samples yield zeros rather than NaNs.
    """
    if not seconds:
        return {"count": 0, "mean_ms": 0.0, "p50_ms": 0.0, "p99_ms": 0.0,
                "max_ms": 0.0}
    import numpy as np

    ms = np.asarray(seconds, dtype=np.float64) * 1000.0
    return {
        "count": int(ms.size),
        "mean_ms": round(float(ms.mean()), 3),
        "p50_ms": round(float(np.percentile(ms, 50)), 3),
        "p99_ms": round(float(np.percentile(ms, 99)), 3),
        "max_ms": round(float(ms.max()), 3),
    }


def format_trace(report: TraceReport, include_timing: bool = True) -> str:
    """Human-readable indented tree, one line per span."""
    lines: list[str] = []

    def walk(span: Span, depth: int) -> None:
        parts = [f"{'  ' * depth}{span.name}"]
        if span.status not in ("ok", "event"):
            parts.append(f"[{span.status}]")
        if include_timing:
            parts.append(f"{span.wall_seconds:.3f}s")
        if span.full_scans:
            parts.append(f"scans={span.full_scans}")
        if span.tuples_read or span.bytes_read:
            parts.append(f"read={span.tuples_read}t/{span.bytes_read}B")
        if span.tuples_written or span.bytes_written:
            parts.append(f"written={span.tuples_written}t/{span.bytes_written}B")
        if span.spill_files:
            parts.append(f"spills={span.spill_files}")
        if span.attributes:
            attrs = " ".join(
                f"{k}={v}" for k, v in sorted(span.attributes.items())
            )
            parts.append(attrs)
        lines.append(" ".join(parts))
        for child in span.children:
            walk(child, depth + 1)

    for root in report.roots:
        walk(root, 0)
    return "\n".join(lines)
