"""Observability: phase-scoped tracing and metrics for BOAT runs.

See :mod:`repro.observability.tracer` for the span model and
``docs/OBSERVABILITY.md`` for the span taxonomy, the JSONL schema, and
the scan-count invariants the test suite enforces on top of it.
"""

from .export import (
    format_trace,
    latency_summary,
    read_jsonl,
    trace_lines,
    write_jsonl,
)
from .tracer import (
    COUNTER_FIELDS,
    NULL_TRACER,
    TRACE_SCHEMA_VERSION,
    NullTracer,
    Span,
    TraceReport,
    Tracer,
    ensure_tracer,
)

__all__ = [
    "COUNTER_FIELDS",
    "NULL_TRACER",
    "TRACE_SCHEMA_VERSION",
    "NullTracer",
    "Span",
    "TraceReport",
    "Tracer",
    "ensure_tracer",
    "format_trace",
    "latency_summary",
    "read_jsonl",
    "trace_lines",
    "write_jsonl",
]
