"""Crash safety for out-of-core builds: retrying scans, checkpoints, resume.

BOAT's premise is that the training database does not fit in memory, so a
build is two long scans over disk-resident data — exactly the regime where
a transient device error or a killed process near the end of a scan is
most expensive.  This package makes the two-scan build fault-tolerant:

* :class:`RetryingTable` absorbs transient ``IOError``s mid-scan by
  re-reading from the last good offset with bounded exponential backoff
  (:class:`RetryPolicy`), surfacing retry counts as tracer attributes.
* :class:`CheckpointManager` persists the build's recoverable state to a
  checkpoint directory: the skeleton with its coarse criteria after the
  sampling phase, then — every N cleanup batches — the scan offset, every
  node's statistics, and a durable spill-file manifest.
* :func:`resume_build` restarts a killed build from its checkpoint,
  re-reading only the tail of the cleanup scan past the last checkpoint,
  and produces a tree byte-identical to an uninterrupted build.

See ``docs/RECOVERY.md`` for the checkpoint format and resume semantics.
"""

from .checkpoint import (
    CheckpointManager,
    CheckpointState,
    build_digest,
    load_checkpoint,
    load_unit_results,
    restore_cleanup_state,
    restore_skeleton,
    serialize_cleanup_state,
    serialize_skeleton,
)
from .resume import resume_build, wrap_retry
from .retry import RetryingTable, RetryPolicy

__all__ = [
    "CheckpointManager",
    "CheckpointState",
    "RetryPolicy",
    "RetryingTable",
    "build_digest",
    "load_checkpoint",
    "load_unit_results",
    "restore_cleanup_state",
    "restore_skeleton",
    "resume_build",
    "serialize_cleanup_state",
    "serialize_skeleton",
    "wrap_retry",
]
