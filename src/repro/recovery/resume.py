"""Resume a killed checkpointed build and finish the identical tree.

:func:`resume_build` is the counterpart of
:func:`repro.core.boat_build` for a process that died mid-build with
``BoatConfig.checkpoint_dir`` set.  It restores the persisted skeleton
and (if the crash happened during the cleanup scan) the checkpointed
per-node statistics and durable spill files, re-runs the cleanup scan
from the checkpointed offset, and finalizes.  Because the skeleton is
immutable once saved and store row order equals table scan order, the
resumed build's tree is *byte-identical* to what the uninterrupted build
would have produced — at any worker count and even with a different
batch size than the crashed process used.

What resume re-reads: only the rows between the last checkpoint and the
end of the table.  The sample scan is never repeated — the skeleton it
produced is already on disk — so total distinct-tuple I/O across the
crashed and resumed processes stays at the two-scan bound, plus the
re-read tail bounded by ``checkpoint_every_batches * batch_rows`` rows
of the crashed process.

Guard rails: the checkpoint's configuration digest must match the
resuming process's (schema, table size, :class:`SplitConfig`, and every
skeleton-shaping BOAT knob) — resuming under a configuration that would
define a different tree raises :class:`~repro.exceptions.RecoveryError`
instead of quietly producing a hybrid.

Limitations: a crash *before* the skeleton checkpoint (during the
sampling phase) leaves nothing worth resuming — the sampling phase reads
one scan and keeps all state in memory — so resume refuses and the build
should simply be restarted.  Frontier prefetch is skipped on resume (the
in-memory sample died with the predecessor); prefetch is a speed
optimization that never changes the tree.
"""

from __future__ import annotations

import time

from ..config import BoatConfig, SplitConfig
from ..core.boat import BoatReport, BoatResult
from ..core.cleanup import cleanup_scan
from ..core.finalize import finalize_tree
from ..exceptions import RecoveryError, ReproError, StorageError
from ..kernels import get_kernels
from ..observability import NULL_TRACER, NullTracer, Tracer
from ..parallel import WorkerPool
from ..splits.methods import ImpuritySplitSelection
from ..storage import IOStats, Schema, Table
from .checkpoint import (
    PHASE_COMPLETE,
    CheckpointManager,
    build_digest,
    load_checkpoint,
    restore_cleanup_state,
    restore_skeleton,
)
from .retry import RetryingTable, RetryPolicy


def wrap_retry(
    table: Table, boat_config: BoatConfig, tracer: Tracer | NullTracer
) -> Table:
    """Apply ``BoatConfig`` retry knobs to a table (identity when off)."""
    if boat_config.scan_retries <= 0:
        return table
    return RetryingTable(
        table,
        RetryPolicy(
            max_retries=boat_config.scan_retries,
            base_delay_s=boat_config.scan_retry_base_delay_s,
            max_delay_s=boat_config.scan_retry_max_delay_s,
        ),
        tracer=tracer,
    )


def resume_build(
    table: Table,
    method: ImpuritySplitSelection,
    split_config: SplitConfig | None = None,
    boat_config: BoatConfig | None = None,
    tracer: Tracer | NullTracer | None = None,
) -> BoatResult:
    """Finish a checkpointed build that a previous process started.

    Args:
        table: the same training database the crashed build was scanning.
        method: the same split selection method.
        split_config / boat_config: the same configuration the crashed
            build used (``boat_config.checkpoint_dir`` names the
            checkpoint); tree-defining mismatches are refused via the
            config digest.  Speed-only knobs (workers, batch size,
            retries) may differ freely.
        tracer: phase tracer, resolved exactly as in ``boat_build``.

    Returns:
        A :class:`~repro.core.BoatResult` whose tree is byte-identical to
        the uninterrupted build's.  ``report.sampling`` is ``None`` — the
        sampling diagnostics died with the original process.
    """
    split_config = split_config or SplitConfig()
    boat_config = boat_config or BoatConfig()
    if not boat_config.checkpoint_dir:
        raise RecoveryError(
            "resume_build requires BoatConfig.checkpoint_dir to name the "
            "checkpoint directory to resume from"
        )
    io = table.io_stats
    if tracer is None:
        tracer = Tracer(io) if boat_config.trace else NULL_TRACER

    state = load_checkpoint(boat_config.checkpoint_dir)
    if state.sharded is not None:
        # A sharded coordinator wrote this checkpoint: hand off to the
        # elastic resume (unit-level restore, replica failover).  The
        # returned ShardedBoatResult shares the .tree/.report surface.
        from ..shard.elastic import resume_sharded_build

        return resume_sharded_build(
            table, method, split_config, boat_config, tracer=tracer
        )
    if state.phase == PHASE_COMPLETE:
        raise RecoveryError(
            f"checkpoint {boat_config.checkpoint_dir} records a completed "
            "build; nothing to resume"
        )
    if state.skeleton is None:
        raise RecoveryError(
            "the build died before its skeleton was checkpointed (sampling "
            "phase); restart it from scratch — there is no state to save"
        )
    schema: Schema = table.schema
    digest = build_digest(schema, len(table), split_config, boat_config)
    recorded = state.meta.get("config_digest")
    if digest != recorded:
        raise RecoveryError(
            "configuration digest mismatch: the checkpoint was written under "
            "a different schema/table/configuration than this resume "
            f"(checkpoint {recorded}, resume {digest}); resuming would not "
            "reproduce the original tree"
        )

    manager = CheckpointManager(
        boat_config.checkpoint_dir, boat_config.checkpoint_every_batches, tracer
    )
    report = BoatReport(mode="boat", table_size=len(table))

    def phase(name: str, start: float, io_before: IOStats | None) -> None:
        report.wall_seconds[name] = time.perf_counter() - start
        if io is not None and io_before is not None:
            report.io[name] = io.delta_since(io_before)

    root = None
    try:
        with tracer.span(
            "boat_resume", table_size=len(table), checkpoint=manager.directory
        ) as resume_span:
            # -- restore ------------------------------------------------------
            t0 = time.perf_counter()
            io_before = io.snapshot() if io is not None else None
            root = restore_skeleton(
                state.skeleton, schema, boat_config, io, manager.spill_dir
            )
            start_row = 0
            if state.cleanup is not None:
                start_row = restore_cleanup_state(
                    root, state.cleanup, schema, boat_config, io, manager.spill_dir
                )
            resume_span.set(start_row=start_row)
            phase("restore", t0, io_before)

            # -- cleanup scan tail -------------------------------------------
            t0 = time.perf_counter()
            io_before = io.snapshot() if io is not None else None
            scan_table = wrap_retry(table, boat_config, tracer)
            with WorkerPool(
                boat_config.n_workers, "thread", tracer=tracer
            ) as pool:
                cleanup_scan(
                    root,
                    scan_table,
                    schema,
                    boat_config.batch_rows,
                    pool,
                    tracer=tracer,
                    start_row=start_row,
                    progress=manager.progress_hook(root),
                    kernels=get_kernels(boat_config.kernel_backend),
                )
                phase("cleanup_scan", t0, io_before)
                # The scan is fully accumulated: checkpoint it so a crash
                # during finalization resumes with zero rows to re-read.
                manager.checkpoint_cleanup(root, len(table))

                # -- finalization --------------------------------------------
                t0 = time.perf_counter()
                io_before = io.snapshot() if io is not None else None
                with tracer.span("finalize") as finalize_span:
                    tree, finalize_report = finalize_tree(
                        root, schema, method, split_config
                    )
                    finalize_span.set(
                        confirmed_splits=finalize_report.confirmed_splits,
                        frontier_completions=finalize_report.frontier_completions,
                        rebuilds=finalize_report.rebuilds,
                        tree_nodes=tree.n_nodes,
                    )
                report.finalize = finalize_report
                phase("finalize", t0, io_before)
                report.workers = pool.n_workers
                report.parallel_backend = pool.backend
    except ReproError:
        raise
    except OSError as exc:
        raise StorageError(f"I/O failure during BOAT resume: {exc}") from exc
    finally:
        # Free memory either way; durable spill files stay on disk until
        # finish() sweeps them, so a failed resume remains resumable.
        if root is not None:
            root.release()
    manager.finish()
    if tracer.enabled:
        report.trace = tracer.report()
    return BoatResult(tree=tree, report=report)
