"""Checkpoint format and (de)serialization for crash-safe builds.

A checkpoint directory holds everything a fresh process needs to finish a
build its predecessor started:

* ``meta.json`` — format version, build phase, the table's schema and row
  count, and a digest of every configuration knob that shapes the output
  (resuming under a different tree-defining configuration is refused).
* ``skeleton.json`` — the skeleton tree with its coarse criteria, bucket
  edges and family estimates, written once when the sampling phase ends.
  From that moment the skeleton is immutable, which is what makes the
  cleanup scan checkpointable at all: a checkpoint only has to capture
  *accumulated state*, never in-flight structure.
* ``cleanup_state.json`` — the cleanup scan's progress: the scan offset
  (rows fully accumulated), every node's statistics arrays, and a
  manifest of durable spill files (row counts for each node's held /
  family store).  Rewritten atomically every N batches.
* ``spills/`` — one durable spill file per non-empty node store, named
  ``node{id:06d}-{held|family}.spill``.  Stores append to these files as
  the scan runs; :meth:`~repro.storage.TupleStore.checkpoint` fsyncs them
  and reports the row count the manifest records.  On restore the files
  are truncated back to their manifest counts, discarding torn or
  post-checkpoint appends.

All JSON files are written atomically (tmp file, fsync, ``os.replace``)
and spill files are fsynced *before* the manifest that references them,
so the directory is consistent after a kill at any instant: the worst
case loses the work since the previous checkpoint, never the checkpoint
itself.

Numbers round-trip exactly: split points, interval bounds and bucket
edges are Python floats whose ``repr`` (what :mod:`json` emits) parses
back to the identical IEEE-754 value — resumed builds are byte-identical,
not approximately equal.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..config import BoatConfig, SplitConfig
from ..core.coarse import CoarseCategorical, CoarseCriterion, CoarseNumeric
from ..core.state import BoatNode, durable_store_path
from ..exceptions import RecoveryError
from ..observability import NULL_TRACER, NullTracer, Tracer
from ..storage import IOStats, Schema, TupleStore

FORMAT_VERSION = 1
META_FILE = "meta.json"
SKELETON_FILE = "skeleton.json"
STATE_FILE = "cleanup_state.json"
SPILL_DIR = "spills"
#: Sharded-build checkpoint state (see :mod:`repro.shard.elastic`):
#: ``shard_state.json`` lists the completed cleanup units (global row
#: intervals), ``units/`` holds one pickled
#: :class:`~repro.shard.stats.ShardScanResult` per completed unit.
SHARD_STATE_FILE = "shard_state.json"
UNITS_DIR = "units"

#: Build phases recorded in ``meta.json``, in order.
PHASE_SAMPLING = "sampling"
PHASE_CLEANUP = "cleanup"
PHASE_COMPLETE = "complete"


def _atomic_write_json(path: str, payload: dict) -> None:
    """Write JSON so a kill at any instant leaves the old file or the new."""
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, sort_keys=True)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def _read_json(path: str, what: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except FileNotFoundError:
        raise RecoveryError(f"checkpoint is missing its {what} ({path})")
    except json.JSONDecodeError as exc:
        raise RecoveryError(f"checkpoint {what} is corrupt ({path}): {exc}")


# ---------------------------------------------------------------------------
# Configuration digest
# ---------------------------------------------------------------------------


def build_digest(
    schema: Schema,
    table_rows: int,
    split_config: SplitConfig,
    boat_config: BoatConfig,
) -> str:
    """Digest of everything that defines the output tree and the skeleton.

    Covers the schema, the table size, the full :class:`SplitConfig`
    (the tree's identity) and the :class:`BoatConfig` knobs that shape the
    skeleton the checkpoint persists (sample, bootstraps, interval
    widening, buckets, seed).  Speed-only knobs — batch size, worker
    count, spill threshold, retry/checkpoint settings — are deliberately
    excluded: a build may be resumed with more workers or a different
    batch size and still produce the identical tree.
    """
    payload = {
        "schema": schema.to_dict(),
        "table_rows": table_rows,
        "split": {
            "min_samples_split": split_config.min_samples_split,
            "min_samples_leaf": split_config.min_samples_leaf,
            "max_depth": split_config.max_depth,
            "max_categorical_exhaustive": split_config.max_categorical_exhaustive,
        },
        "boat": {
            "sample_size": boat_config.sample_size,
            "bootstrap_repetitions": boat_config.bootstrap_repetitions,
            "bootstrap_subsample": boat_config.bootstrap_subsample,
            "interval_widening": boat_config.interval_widening,
            "interval_impurity_slack": boat_config.interval_impurity_slack,
            "inmemory_threshold": boat_config.inmemory_threshold,
            "bucket_budget": boat_config.bucket_budget,
            "seed": boat_config.seed,
        },
    }
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


# ---------------------------------------------------------------------------
# Skeleton (de)serialization
# ---------------------------------------------------------------------------


def _criterion_to_dict(criterion: CoarseCriterion | None) -> dict | None:
    if criterion is None:
        return None
    if isinstance(criterion, CoarseNumeric):
        return {
            "kind": "numeric",
            "attribute_index": criterion.attribute_index,
            "low": criterion.low,
            "high": criterion.high,
        }
    return {
        "kind": "categorical",
        "attribute_index": criterion.attribute_index,
        "subset": sorted(criterion.subset),
    }


def _criterion_from_dict(data: dict | None) -> CoarseCriterion | None:
    if data is None:
        return None
    kind = data.get("kind")
    if kind == "numeric":
        return CoarseNumeric(data["attribute_index"], data["low"], data["high"])
    if kind == "categorical":
        return CoarseCategorical(
            data["attribute_index"], frozenset(data["subset"])
        )
    raise RecoveryError(f"unknown coarse criterion kind {kind!r} in checkpoint")


def serialize_skeleton(root: BoatNode) -> dict:
    """The skeleton's immutable structure as a JSON-safe nested dict."""

    def node_dict(node: BoatNode) -> dict:
        data = {
            "node_id": node.node_id,
            "depth": node.depth,
            "estimated_family": node.estimated_family,
            "criterion": _criterion_to_dict(node.criterion),
            "bucket_edges": {
                str(i): [float(v) for v in edges]
                for i, edges in node.bucket_edges.items()
            },
        }
        if node.left is not None:
            data["left"] = node_dict(node.left)
            data["right"] = node_dict(node.right)
        return data

    return node_dict(root)


def restore_skeleton(
    data: dict,
    schema: Schema,
    config: BoatConfig,
    io_stats: IOStats | None,
    durable_dir: str | None,
    spill_dir: str | None = None,
) -> BoatNode:
    """Rebuild a zero-statistics skeleton tree from its serialized form.

    Every node store is created with its deterministic durable path under
    ``durable_dir`` (but no file yet — :func:`restore_cleanup_state`
    attaches the checkpointed files afterwards).  Shard workers restore
    *replica* skeletons with ``durable_dir=None`` and a coordinator-owned
    ``spill_dir``, so any replica spill files live where the coordinator
    can sweep them.
    """

    def build(node_data: dict) -> BoatNode:
        try:
            node = BoatNode(
                node_id=node_data["node_id"],
                depth=node_data["depth"],
                criterion=_criterion_from_dict(node_data["criterion"]),
                schema=schema,
                bucket_edges={
                    int(i): np.asarray(edges, dtype=np.float64)
                    for i, edges in node_data["bucket_edges"].items()
                },
                config=config,
                spill_dir=spill_dir,
                io_stats=io_stats,
                estimated_family=node_data["estimated_family"],
                durable_dir=durable_dir,
            )
        except KeyError as exc:
            raise RecoveryError(f"checkpoint skeleton is missing field {exc}")
        if "left" in node_data:
            node.left = build(node_data["left"])
            node.right = build(node_data["right"])
            node.left.parent = node
            node.right.parent = node
        return node

    return build(data)


# ---------------------------------------------------------------------------
# Cleanup-scan state (de)serialization
# ---------------------------------------------------------------------------


def serialize_cleanup_state(root: BoatNode, rows_scanned: int) -> dict:
    """Snapshot the scan's accumulated state; flushes durable stores.

    Calling this checkpoints every node store
    (:meth:`~repro.storage.TupleStore.checkpoint`: spill + fsync), so the
    row counts recorded in the returned manifest are on disk before the
    caller persists the manifest itself.
    """
    nodes: dict[str, dict] = {}
    for node in root.nodes():
        entry: dict = {
            "class_counts": node.class_counts.tolist(),
            "cat_counts": {
                str(i): m.tolist() for i, m in node.cat_counts.items()
            },
            "bucket_counts": {
                str(i): m.tolist() for i, m in node.bucket_counts.items()
            },
        }
        if node.below_counts is not None:
            entry["below_counts"] = node.below_counts.tolist()
            entry["above_counts"] = node.above_counts.tolist()
        if node.held is not None:
            entry["held_rows"] = node.held.checkpoint()
        if node.family_store is not None:
            entry["family_rows"] = node.family_store.checkpoint()
        nodes[str(node.node_id)] = entry
    return {
        "format_version": FORMAT_VERSION,
        "rows_scanned": rows_scanned,
        "nodes": nodes,
    }


def restore_cleanup_state(
    root: BoatNode,
    state: dict,
    schema: Schema,
    config: BoatConfig,
    io_stats: IOStats | None,
    durable_dir: str,
) -> int:
    """Load checkpointed statistics into a restored skeleton.

    Re-attaches every durable spill file named in the manifest (truncated
    to its recorded row count).  Returns the checkpointed scan offset —
    the row the resumed cleanup scan starts from.
    """
    nodes = state.get("nodes", {})
    for node in root.nodes():
        entry = nodes.get(str(node.node_id))
        if entry is None:
            raise RecoveryError(
                f"checkpoint cleanup state has no entry for skeleton node "
                f"{node.node_id}"
            )
        node.class_counts = np.asarray(entry["class_counts"], dtype=np.int64)
        node.cat_counts = {
            int(i): np.asarray(m, dtype=np.int64)
            for i, m in entry["cat_counts"].items()
        }
        node.bucket_counts = {
            int(i): np.asarray(m, dtype=np.int64)
            for i, m in entry["bucket_counts"].items()
        }
        if node.below_counts is not None:
            node.below_counts = np.asarray(entry["below_counts"], dtype=np.int64)
            node.above_counts = np.asarray(entry["above_counts"], dtype=np.int64)
        if node.held is not None:
            node.held = TupleStore.restore(
                schema,
                durable_store_path(durable_dir, node.node_id, "held"),
                entry["held_rows"],
                config.spill_threshold_rows,
                io_stats,
            )
        if node.family_store is not None:
            node.family_store = TupleStore.restore(
                schema,
                durable_store_path(durable_dir, node.node_id, "family"),
                entry["family_rows"],
                config.spill_threshold_rows,
                io_stats,
            )
    return int(state["rows_scanned"])


# ---------------------------------------------------------------------------
# The manager
# ---------------------------------------------------------------------------


@dataclass
class CheckpointState:
    """A loaded checkpoint: metadata, skeleton, and optional scan progress."""

    meta: dict
    skeleton: dict | None
    cleanup: dict | None

    @property
    def phase(self) -> str:
        return self.meta.get("phase", PHASE_SAMPLING)

    @property
    def sharded(self) -> dict | None:
        """The sharded-build metadata, or ``None`` for a flat checkpoint."""
        return self.meta.get("sharded")


def unit_file_name(lo: int, hi: int) -> str:
    """Checkpointed cleanup-unit file for global row interval ``[lo, hi)``."""
    return f"unit-{lo:012d}-{hi:012d}.pkl"


def load_unit_results(directory: str) -> list[tuple[int, int, object]]:
    """Load a sharded checkpoint's completed cleanup units, sorted by ``lo``.

    Returns ``(lo, hi, ShardScanResult)`` triples.  ``shard_state.json``
    is only ever written *after* the unit files it references are
    fsynced, so a referenced file that is missing or unreadable means the
    checkpoint directory was corrupted out-of-band — refused rather than
    silently dropped, since dropping a unit would silently re-scan
    already-counted rows.
    """
    state_path = os.path.join(directory, SHARD_STATE_FILE)
    if not os.path.exists(state_path):
        return []
    state = _read_json(state_path, "shard state")
    units: list[tuple[int, int, object]] = []
    for lo, hi in state.get("units", []):
        path = os.path.join(directory, UNITS_DIR, unit_file_name(lo, hi))
        try:
            with open(path, "rb") as fh:
                result = pickle.load(fh)
        except (OSError, pickle.PickleError, EOFError) as exc:
            raise RecoveryError(
                f"checkpoint unit [{lo}, {hi}) is unreadable ({path}): "
                f"{type(exc).__name__}: {exc}"
            )
        units.append((int(lo), int(hi), result))
    units.sort(key=lambda triple: triple[0])
    return units


def load_checkpoint(directory: str) -> CheckpointState:
    """Read a checkpoint directory, validating version and consistency."""
    meta = _read_json(os.path.join(directory, META_FILE), "metadata")
    version = meta.get("format_version")
    if version != FORMAT_VERSION:
        raise RecoveryError(
            f"checkpoint format version {version!r} is not supported "
            f"(expected {FORMAT_VERSION})"
        )
    skeleton = None
    cleanup = None
    skeleton_path = os.path.join(directory, SKELETON_FILE)
    if os.path.exists(skeleton_path):
        skeleton = _read_json(skeleton_path, "skeleton")
    state_path = os.path.join(directory, STATE_FILE)
    if os.path.exists(state_path):
        cleanup = _read_json(state_path, "cleanup state")
    return CheckpointState(meta=meta, skeleton=skeleton, cleanup=cleanup)


class CheckpointManager:
    """Owns one checkpoint directory for the lifetime of one build.

    The driver calls, in order: :meth:`begin` (before the sampling phase),
    :meth:`save_skeleton` (once the skeleton is fixed),
    :meth:`progress_hook` (wired into the cleanup scan; fires
    :meth:`checkpoint_cleanup` every ``every_batches`` batches), and
    :meth:`finish` on success — which sweeps the spill files and marks the
    checkpoint complete.  A build that dies anywhere in between leaves a
    directory :func:`resume_build` can pick up.
    """

    def __init__(
        self,
        directory: str,
        every_batches: int = 16,
        tracer: Tracer | NullTracer = NULL_TRACER,
    ):
        if every_batches < 1:
            raise ValueError("every_batches must be >= 1")
        self.directory = os.fspath(directory)
        self.every_batches = every_batches
        self._tracer = tracer
        self._batches_since = 0
        #: Checkpoints written during this build (diagnostics/tests).
        self.checkpoints_written = 0
        #: Completed cleanup units recorded so far (sharded builds).
        self._units: list[tuple[int, int]] = []

    @property
    def spill_dir(self) -> str:
        return os.path.join(self.directory, SPILL_DIR)

    @property
    def units_dir(self) -> str:
        return os.path.join(self.directory, UNITS_DIR)

    def _meta_path(self) -> str:
        return os.path.join(self.directory, META_FILE)

    def _set_phase(self, phase: str) -> None:
        meta = _read_json(self._meta_path(), "metadata")
        meta["phase"] = phase
        _atomic_write_json(self._meta_path(), meta)

    def begin(self, schema: Schema, table_rows: int, config_digest: str) -> dict:
        """Initialize (or reset) the directory for a fresh build."""
        os.makedirs(self.spill_dir, exist_ok=True)
        self._sweep_stale()
        meta = {
            "format_version": FORMAT_VERSION,
            "phase": PHASE_SAMPLING,
            "schema": schema.to_dict(),
            "table_rows": table_rows,
            "config_digest": config_digest,
        }
        _atomic_write_json(self._meta_path(), meta)
        return meta

    def _sweep_stale(self) -> None:
        for name in (SKELETON_FILE, STATE_FILE, SHARD_STATE_FILE):
            try:
                os.remove(os.path.join(self.directory, name))
            except FileNotFoundError:
                pass
        for name in os.listdir(self.spill_dir):
            if name.endswith(".spill"):
                os.remove(os.path.join(self.spill_dir, name))
        if os.path.isdir(self.units_dir):
            for name in os.listdir(self.units_dir):
                if name.endswith(".pkl") or name.endswith(".tmp"):
                    os.remove(os.path.join(self.units_dir, name))

    def begin_sharded(
        self,
        schema: Schema,
        table_rows: int,
        config_digest: str,
        placement: str,
        schema_digest: str,
    ) -> dict:
        """Initialize the directory for a fresh *sharded* build.

        The recorded sharded metadata deliberately pins the placement,
        the total row count and the schema digest but **not** the shard
        count or shard boundaries: a checkpoint taken at K shards may be
        resumed at K' after a :func:`repro.storage.reshard`, because
        completed cleanup units are keyed by global row interval — which
        survives any range re-partitioning — rather than by shard id.
        """
        os.makedirs(self.units_dir, exist_ok=True)
        meta = self.begin(schema, table_rows, config_digest)
        meta["sharded"] = {
            "placement": placement,
            "total_rows": table_rows,
            "schema_digest": schema_digest,
        }
        _atomic_write_json(self._meta_path(), meta)
        return meta

    def checkpoint_unit(self, lo: int, hi: int, result: object) -> None:
        """Persist one completed cleanup unit (global rows ``[lo, hi)``).

        The pickled result is fsynced before ``shard_state.json`` is
        atomically rewritten to reference it, so a kill at any instant
        leaves a state file whose every referenced unit is durable.
        Called from the elastic dispatcher's driving thread only.
        """
        os.makedirs(self.units_dir, exist_ok=True)
        path = os.path.join(self.units_dir, unit_file_name(lo, hi))
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        self._units.append((int(lo), int(hi)))
        self._units.sort()
        _atomic_write_json(
            os.path.join(self.directory, SHARD_STATE_FILE),
            {
                "format_version": FORMAT_VERSION,
                "units": [list(unit) for unit in self._units],
            },
        )
        self.checkpoints_written += 1
        span = self._tracer.current()
        if span is not None:
            span.bump("checkpoints")
        self._tracer.event("checkpoint_unit", lo=lo, hi=hi)

    def restore_units(self, units: list[tuple[int, int]]) -> None:
        """Seed the in-memory unit list from a loaded checkpoint (resume)."""
        self._units = sorted((int(lo), int(hi)) for lo, hi in units)

    def save_skeleton(self, root: BoatNode) -> None:
        """Persist the (now immutable) skeleton; enter the cleanup phase."""
        _atomic_write_json(
            os.path.join(self.directory, SKELETON_FILE), serialize_skeleton(root)
        )
        self._set_phase(PHASE_CLEANUP)
        self._tracer.event("checkpoint_skeleton")

    def checkpoint_cleanup(self, root: BoatNode, rows_scanned: int) -> None:
        """Persist scan progress: spill files first, then the manifest."""
        self._batches_since = 0
        state = serialize_cleanup_state(root, rows_scanned)
        _atomic_write_json(os.path.join(self.directory, STATE_FILE), state)
        self.checkpoints_written += 1
        span = self._tracer.current()
        if span is not None:
            span.bump("checkpoints")
        self._tracer.event("checkpoint", rows_scanned=rows_scanned)

    def progress_hook(self, root: BoatNode) -> Callable[[int], None]:
        """A cleanup-scan ``progress`` callback checkpointing every N batches."""

        def on_progress(rows_scanned: int) -> None:
            self._batches_since += 1
            if self._batches_since >= self.every_batches:
                self.checkpoint_cleanup(root, rows_scanned)

        return on_progress

    def finish(self) -> None:
        """Mark the build complete and remove the recovery state.

        Durable spill files are swept here — stores only *drop* them on
        ``clear()`` (see :meth:`repro.storage.TupleStore.clear`) precisely
        so that this sweep is the single point where recovery state dies.
        """
        for name in (SKELETON_FILE, STATE_FILE, SHARD_STATE_FILE):
            try:
                os.remove(os.path.join(self.directory, name))
            except FileNotFoundError:
                pass
        if os.path.isdir(self.spill_dir):
            for name in os.listdir(self.spill_dir):
                if name.endswith(".spill"):
                    os.remove(os.path.join(self.spill_dir, name))
        if os.path.isdir(self.units_dir):
            for name in os.listdir(self.units_dir):
                if name.endswith(".pkl") or name.endswith(".tmp"):
                    os.remove(os.path.join(self.units_dir, name))
        self._set_phase(PHASE_COMPLETE)
