"""A scan wrapper that survives transient I/O errors.

A 40-second sequential scan over a failing device should not throw away
39 seconds of routing work because one ``read(2)`` returned ``EIO``.
:class:`RetryingTable` wraps any :class:`~repro.storage.Table` and makes
``scan`` self-healing: when the underlying iteration raises a transient
:class:`OSError`, it backs off (bounded exponential) and re-reads from
the last offset it successfully delivered to the caller.  Batches already
yielded are never re-yielded, so downstream accumulation (the cleanup
scan's per-node statistics and held stores) sees every row exactly once
— the wrapper changes availability, never the output tree.

Offset-capable tables (:class:`~repro.storage.DiskTable`, or anything
advertising ``scan_supports_start_row``) restart by seeking straight to
the resume offset, so a retry re-reads only the faulted batch.  Generic
tables are restarted from the top with the prefix discarded; those
re-reads are still charged to the table's I/O stats — the honest cost of
retrying a device that cannot seek.

Every absorbed fault is surfaced to the active tracer: a ``scan_retry``
event (attempt number, resume offset, error type, backoff) attached to
the current phase span, plus a ``scan_retries`` counter bumped on that
span.  Faults that persist past :attr:`RetryPolicy.max_retries`
consecutive failures at the same offset propagate unchanged.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from ..config import DEFAULT_BATCH_ROWS
from ..observability import NULL_TRACER, NullTracer, Tracer
from ..storage import Table


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for transient scan failures.

    Attributes:
        max_retries: consecutive failures tolerated at one scan offset
            before the error propagates.  (A fault that keeps firing at
            the same offset is not transient.)
        base_delay_s: sleep before the first retry; doubles per
            consecutive failure.
        max_delay_s: cap on a single backoff sleep.
    """

    max_retries: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_delay_s < 0:
            raise ValueError("base_delay_s must be >= 0")
        if self.max_delay_s < self.base_delay_s:
            raise ValueError("max_delay_s must be >= base_delay_s")

    def delay(self, consecutive_failures: int) -> float:
        """Backoff before retry number ``consecutive_failures`` (1-based)."""
        return min(
            self.base_delay_s * (2 ** max(consecutive_failures - 1, 0)),
            self.max_delay_s,
        )


class RetryingTable(Table):
    """Wrap a table so scans absorb transient ``OSError``s and resume.

    Args:
        inner: the real table; its schema and ``io_stats`` pass through.
        policy: retry budget and backoff shape.
        tracer: receives one ``scan_retry`` event per absorbed fault.
        sleep: injectable for tests (defaults to :func:`time.sleep`).
    """

    #: The wrapper forwards offset scans, so resumed cleanup scans work
    #: through it without re-reading the prefix (when the inner table can
    #: seek).
    scan_supports_start_row = True

    def __init__(
        self,
        inner: Table,
        policy: RetryPolicy | None = None,
        tracer: Tracer | NullTracer = NULL_TRACER,
        sleep: Callable[[float], None] = time.sleep,
    ):
        super().__init__(inner.schema, inner.io_stats)
        self._inner = inner
        self.policy = policy or RetryPolicy()
        self._tracer = tracer
        self._sleep = sleep
        #: Total faults absorbed across all scans (diagnostics/tests).
        self.retries_absorbed = 0

    @property
    def inner(self) -> Table:
        return self._inner

    def __len__(self) -> int:
        return len(self._inner)

    def append(self, batch: np.ndarray) -> None:
        self._inner.append(batch)

    def close(self) -> None:
        self._inner.close()

    # -- the self-healing scan ----------------------------------------------

    def _seekable(self) -> bool:
        return bool(getattr(self._inner, "scan_supports_start_row", False))

    def _scan_inner(self, batch_rows: int, offset: int) -> Iterator[np.ndarray]:
        if offset == 0:
            yield from self._inner.scan(batch_rows)
            return
        if self._seekable():
            yield from self._inner.scan(batch_rows, start_row=offset)
            return
        skipped = 0
        for batch in self._inner.scan(batch_rows):
            if skipped >= offset:
                yield batch
                continue
            drop = min(offset - skipped, len(batch))
            skipped += drop
            if drop < len(batch):
                yield batch[drop:]

    def scan(
        self, batch_rows: int = DEFAULT_BATCH_ROWS, start_row: int = 0
    ) -> Iterator[np.ndarray]:
        offset = start_row
        failures_here = 0
        while True:
            pass_start = offset
            try:
                for batch in self._scan_inner(batch_rows, pass_start):
                    yield batch
                    offset += len(batch)
                    failures_here = 0  # progress resets the budget
                if start_row == 0 and pass_start > 0 and self._seekable():
                    # The logical full scan completed across several
                    # partial passes, none of which recorded it.
                    if self._io_stats is not None:
                        self._io_stats.record_full_scan()
                return
            except OSError as exc:
                failures_here += 1
                if failures_here > self.policy.max_retries:
                    raise
                delay = self.policy.delay(failures_here)
                self.retries_absorbed += 1
                span = self._tracer.current()
                if span is not None:
                    span.bump("scan_retries")
                self._tracer.event(
                    "scan_retry",
                    attempt=failures_here,
                    resume_offset=offset,
                    error=type(exc).__name__,
                    backoff_s=delay,
                )
                if delay > 0:
                    self._sleep(delay)

    def __repr__(self) -> str:
        return (
            f"RetryingTable({self._inner!r}, retries={self.policy.max_retries}, "
            f"absorbed={self.retries_absorbed})"
        )
