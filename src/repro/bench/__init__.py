"""Benchmark harness: workload specs, algorithm adapters, series reporting."""

from .harness import (
    RunResult,
    WorkloadSpec,
    bench_scale,
    default_configs,
    materialize,
    run_boat,
    run_reference,
    run_rf_hybrid,
    run_rf_vertical,
    scaled,
    simulated_io_mbps,
)
from .reporting import (
    append_results_json,
    format_series,
    format_table,
    results_path,
    speedup_summary,
)

__all__ = [
    "RunResult",
    "WorkloadSpec",
    "append_results_json",
    "bench_scale",
    "default_configs",
    "format_series",
    "format_table",
    "materialize",
    "results_path",
    "run_boat",
    "run_reference",
    "run_rf_hybrid",
    "run_rf_vertical",
    "scaled",
    "simulated_io_mbps",
    "speedup_summary",
]
