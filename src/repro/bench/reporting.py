"""Series formatting for benchmark output.

Benchmarks print the same series the paper's figures plot: an x-axis
(tuples, noise %, extra attributes, chunk index) against one column per
algorithm.  Everything is plain text so ``pytest -s benchmarks/`` output
can be pasted straight into EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
from collections import defaultdict
from typing import Sequence

from .harness import RunResult


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width text table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    x_values: Sequence[object],
    results: Sequence[RunResult],
    metric: str = "wall_seconds",
) -> str:
    """A figure-style series: x-axis vs per-algorithm metric columns.

    ``results`` must contain one row per (algorithm, x value), in x order
    within each algorithm.
    """
    by_algorithm: dict[str, list[RunResult]] = defaultdict(list)
    for result in results:
        by_algorithm[result.algorithm].append(result)
    algorithms = sorted(by_algorithm)
    headers = [x_label] + [f"{a} ({_metric_label(metric)})" for a in algorithms]
    rows = []
    for i, x in enumerate(x_values):
        row: list[object] = [x]
        for algorithm in algorithms:
            series = by_algorithm[algorithm]
            value = getattr(series[i], metric) if i < len(series) else ""
            row.append(_fmt(value))
        rows.append(row)
    return f"== {title} ==\n" + format_table(headers, rows)


def _metric_label(metric: str) -> str:
    return {
        "wall_seconds": "s",
        "scans": "scans",
        "tuples_read": "tuples read",
    }.get(metric, metric)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def speedup_summary(results: Sequence[RunResult], baseline: str = "BOAT") -> str:
    """Average speedup of ``baseline`` over each other algorithm."""
    by_key: dict[tuple[str, str], RunResult] = {}
    for result in results:
        by_key[(result.algorithm, result.workload)] = result
    others = sorted({a for a, _ in by_key} - {baseline})
    lines = []
    for other in others:
        ratios = []
        scan_ratios = []
        for (algorithm, workload), result in by_key.items():
            if algorithm != baseline:
                continue
            competitor = by_key.get((other, workload))
            if competitor is None or result.wall_seconds == 0:
                continue
            ratios.append(competitor.wall_seconds / result.wall_seconds)
            if result.scans:
                scan_ratios.append(competitor.scans / result.scans)
        if ratios:
            avg = sum(ratios) / len(ratios)
            scan_avg = sum(scan_ratios) / len(scan_ratios) if scan_ratios else 0
            lines.append(
                f"{baseline} vs {other}: {avg:.2f}x wall-clock, "
                f"{scan_avg:.2f}x scans (avg over {len(ratios)} workloads)"
            )
    return "\n".join(lines)


def append_results_json(path: str | os.PathLike, title: str, results: Sequence[RunResult]) -> None:
    """Append a result block to a JSON-lines file for later aggregation."""
    record = {"experiment": title, "rows": [r.as_row() for r in results]}
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(record) + "\n")


def results_path() -> str:
    """Where benchmark runs log their series (repo-root ``bench_results.jsonl``)."""
    return os.environ.get("REPRO_BENCH_RESULTS", "bench_results.jsonl")
