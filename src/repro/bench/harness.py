"""Shared benchmark harness for the §5 experiments.

Each figure's benchmark builds a workload (:class:`WorkloadSpec`), runs
the competing algorithms through one of the ``run_*`` adapters, and
reports a series of :class:`RunResult` rows — the same series the paper
plots.  Sizes default to ~25–50x below the paper's (documented per
benchmark) and scale with the ``REPRO_BENCH_SCALE`` environment variable
(e.g. ``REPRO_BENCH_SCALE=10`` approaches paper scale).
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass, field

import numpy as np

from ..config import BoatConfig, RainForestConfig, SplitConfig
from ..core import boat_build
from ..datagen import AgrawalConfig, AgrawalGenerator
from ..exceptions import BenchmarkError
from ..observability import Tracer
from ..rainforest import build_rf_hybrid, build_rf_vertical
from ..splits import ImpuritySplitSelection
from ..storage import DiskTable, IOStats, Table
from ..tree import DecisionTree, build_reference_tree


def bench_scale() -> float:
    """Global size multiplier from the REPRO_BENCH_SCALE env variable."""
    raw = os.environ.get("REPRO_BENCH_SCALE", "1")
    try:
        scale = float(raw)
    except ValueError:
        raise BenchmarkError(f"REPRO_BENCH_SCALE={raw!r} is not a number") from None
    if scale <= 0:
        raise BenchmarkError("REPRO_BENCH_SCALE must be positive")
    return scale


def scaled(n: int) -> int:
    """Apply the global scale to a tuple count."""
    return max(int(n * bench_scale()), 1000)


def simulated_io_mbps() -> float | None:
    """Simulated sequential-device throughput for benchmark tables.

    The paper's testbed was I/O-bound (a 400 MB file on a ~10 MB/s 1999
    disk); a modern page cache erases that cost, so benchmark tables are
    throttled to ``REPRO_SIMULATED_IO_MBPS`` (default 10 MB/s).  Set the
    variable to 0 to disable the simulation and measure pure CPU.
    """
    raw = os.environ.get("REPRO_SIMULATED_IO_MBPS", "10")
    try:
        mbps = float(raw)
    except ValueError:
        raise BenchmarkError(
            f"REPRO_SIMULATED_IO_MBPS={raw!r} is not a number"
        ) from None
    return mbps if mbps > 0 else None


@dataclass(frozen=True)
class WorkloadSpec:
    """One synthetic workload of the evaluation."""

    function_id: int
    n_tuples: int
    noise: float = 0.1
    extra_numeric: int = 0
    seed: int = 0

    def generator(self) -> AgrawalGenerator:
        return AgrawalGenerator(
            AgrawalConfig(
                function_id=self.function_id,
                noise=self.noise,
                extra_numeric=self.extra_numeric,
            ),
            seed=self.seed,
        )

    def describe(self) -> str:
        parts = [f"F{self.function_id}", f"n={self.n_tuples}"]
        if self.noise:
            parts.append(f"noise={self.noise:.0%}")
        if self.extra_numeric:
            parts.append(f"extra={self.extra_numeric}")
        return " ".join(parts)


def materialize(
    spec: WorkloadSpec, directory: str | None = None, io: IOStats | None = None
) -> DiskTable:
    """Generate the workload into an on-disk table (I/O charged to ``io``)."""
    directory = directory or tempfile.mkdtemp(prefix="repro-bench-")
    path = os.path.join(
        directory,
        f"f{spec.function_id}_n{spec.n_tuples}_s{spec.seed}"
        f"_x{spec.extra_numeric}_p{int(spec.noise * 100)}.tbl",
    )
    generator = spec.generator()
    table = DiskTable.create(path, generator.schema, io)
    generator.fill_table(table, spec.n_tuples)
    table.set_simulated_throughput(simulated_io_mbps())
    if io is not None:
        io.reset()  # construction I/O is not part of any algorithm's cost
    return table


@dataclass
class RunResult:
    """One (algorithm, workload) measurement."""

    algorithm: str
    workload: str
    n_tuples: int
    wall_seconds: float
    scans: int
    tuples_read: int
    tree_nodes: int
    tree_leaves: int
    workers: int = 1
    extra: dict[str, float] = field(default_factory=dict)
    #: Per-phase trace summary (:meth:`TraceReport.phase_summary`), when
    #: the adapter ran with tracing.
    trace: dict | None = None

    def as_row(self) -> dict:
        row = {
            "algorithm": self.algorithm,
            "workload": self.workload,
            "n_tuples": self.n_tuples,
            "seconds": round(self.wall_seconds, 3),
            "scans": self.scans,
            "tuples_read": self.tuples_read,
            "nodes": self.tree_nodes,
            "workers": self.workers,
        }
        row.update({k: round(v, 3) for k, v in self.extra.items()})
        if self.trace is not None:
            row["trace"] = self.trace
        return row


def _measure(
    algorithm: str,
    spec: WorkloadSpec,
    table: Table,
    run,
) -> RunResult:
    io = table.io_stats
    before = io.snapshot() if io is not None else None
    start = time.perf_counter()
    tree, extra = run()
    elapsed = time.perf_counter() - start
    delta = io.delta_since(before) if io is not None else IOStats()
    return RunResult(
        algorithm=algorithm,
        workload=spec.describe(),
        n_tuples=spec.n_tuples,
        wall_seconds=elapsed,
        scans=delta.full_scans,
        tuples_read=delta.tuples_read,
        tree_nodes=tree.n_nodes,
        tree_leaves=tree.n_leaves,
        extra=extra,
    )


def run_boat(
    spec: WorkloadSpec,
    table: Table,
    method: ImpuritySplitSelection,
    split_config: SplitConfig,
    boat_config: BoatConfig,
) -> RunResult:
    reports = {}
    tracer = Tracer(table.io_stats)

    def run():
        result = boat_build(table, method, split_config, boat_config, tracer=tracer)
        reports["boat"] = result.report
        extra = {}
        if result.report.finalize is not None:
            extra["rebuilds"] = float(result.report.finalize.rebuilds)
        return result.tree, extra

    measured = _measure("BOAT", spec, table, run)
    measured.workers = reports["boat"].workers
    measured.trace = tracer.report().phase_summary()
    return measured


def run_rf_hybrid(
    spec: WorkloadSpec,
    table: Table,
    method: ImpuritySplitSelection,
    split_config: SplitConfig,
    rf_config: RainForestConfig,
) -> RunResult:
    tracer = Tracer(table.io_stats)

    def run():
        result = build_rf_hybrid(table, method, split_config, rf_config, tracer)
        return result.tree, {"passes": float(result.report.total_passes)}

    measured = _measure("RF-Hybrid", spec, table, run)
    measured.trace = tracer.report().phase_summary()
    return measured


def run_rf_vertical(
    spec: WorkloadSpec,
    table: Table,
    method: ImpuritySplitSelection,
    split_config: SplitConfig,
    rf_config: RainForestConfig,
) -> RunResult:
    tracer = Tracer(table.io_stats)

    def run():
        result = build_rf_vertical(table, method, split_config, rf_config, tracer)
        return result.tree, {"passes": float(result.report.total_passes)}

    measured = _measure("RF-Vertical", spec, table, run)
    measured.trace = tracer.report().phase_summary()
    return measured


def run_reference(
    spec: WorkloadSpec,
    table: Table,
    method: ImpuritySplitSelection,
    split_config: SplitConfig,
) -> tuple[RunResult, DecisionTree]:
    """In-memory reference build (loads the table; one scan charged)."""
    holder: dict[str, DecisionTree] = {}
    tracer = Tracer(table.io_stats)

    def run():
        with tracer.span("reference"):
            with tracer.span("load"):
                family = table.read_all()
            with tracer.span("grow"):
                tree = build_reference_tree(
                    family, table.schema, method, split_config
                )
        holder["tree"] = tree
        return tree, {}

    result = _measure("Reference", spec, table, run)
    result.trace = tracer.report().phase_summary()
    return result, holder["tree"]


def default_configs(
    n_tuples: int,
) -> tuple[SplitConfig, BoatConfig, RainForestConfig, RainForestConfig]:
    """Benchmark defaults that scale the paper's setup to ``n_tuples``.

    The paper: 200 K sample / 20 bootstraps of 50 K on 2–10 M tuples;
    AVC buffers 3 M (RF-Hybrid) and 1.8 M (RF-Vertical) entries; the
    in-memory switch at 1.5 M tuples (15 % of the largest input).  We keep
    the same proportions relative to the input size.
    """
    sample = max(n_tuples // 10, 2000)
    split_config = SplitConfig(
        min_samples_split=max(n_tuples // 500, 20),
        min_samples_leaf=max(n_tuples // 2000, 5),
        max_depth=12,
    )
    boat_config = BoatConfig(
        sample_size=sample,
        bootstrap_repetitions=20,
        bootstrap_subsample=max(sample // 4, 1000),
        inmemory_threshold=max(n_tuples * 3 // 20, 1),
        seed=17,
    )
    hybrid_config = RainForestConfig(
        avc_buffer_entries=max(3 * n_tuples // 10, 50_000),
        inmemory_threshold=max(n_tuples * 3 // 20, 1),
    )
    vertical_config = RainForestConfig(
        avc_buffer_entries=max(18 * n_tuples // 100, 30_000),
        inmemory_threshold=max(n_tuples * 3 // 20, 1),
    )
    return split_config, boat_config, hybrid_config, vertical_config
