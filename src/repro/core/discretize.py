"""Adaptive discretizations for the Lemma 3.1 failure check (§3.4).

At each skeleton node, every numerical predictor attribute gets a
discretization whose bucket boundaries come from the in-memory sample.
The paper's construction heuristic: put *many* boundaries where the
sample impurity profile is close to the node's estimated minimum (the
corner-point lower bound must be tight there to avoid false alarms) and
*few* where the impurity is clearly worse.

We realize this with a deterministic importance-quantile scheme: each
sample candidate value receives weight ``1 / (impurity - i_est + eps)``,
and bucket boundaries are placed at equal cumulative-weight steps.  Dense
weight (impurity near the minimum) therefore attracts boundaries.

Bucket semantics: for edges ``e_0 < e_1 < ... < e_{m-1}``, bucket 0 is
``(-inf, e_0]``, bucket j is ``(e_{j-1}, e_j]``, bucket m is
``(e_{m-1}, +inf)`` — matching ``np.searchsorted(edges, x, side="left")``.
"""

from __future__ import annotations

import numpy as np

from ..splits.numeric import NumericProfile


def bucket_index(edges: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Bucket index of each value under the edge semantics above."""
    return np.searchsorted(edges, values, side="left")


def build_discretization(
    profile: NumericProfile,
    estimated_minimum: float,
    bucket_budget: int,
    forced_edges: tuple[float, ...] = (),
    exclude_interval: tuple[float, float] | None = None,
) -> np.ndarray:
    """Bucket edges for one numeric attribute at one node.

    Args:
        profile: the sample impurity profile of the attribute.
        estimated_minimum: the node's estimated best impurity over all
            attributes (from the sample) — the reference point the lower
            bound will be compared against.
        bucket_budget: target number of edges.
        forced_edges: edges that must appear verbatim (the confidence
            interval boundaries of the node's own splitting attribute).
        exclude_interval: candidates inside this closed interval get no
            edges of their own — used for the node's splitting attribute,
            whose in-interval region is searched exactly from the held
            tuples; spending the budget there would starve the flanks the
            failure check actually bounds.

    Returns:
        A sorted, deduplicated float64 edge array (possibly empty, which
        means a single all-encompassing bucket).
    """
    candidates = profile.candidates
    if len(candidates) == 0:
        return np.asarray(sorted(set(forced_edges)), dtype=np.float64)
    totals = profile.left_counts.sum(axis=1).astype(np.float64)
    n = totals[-1]
    mass = np.diff(totals, prepend=0.0) / max(n, 1.0)
    excluded = np.zeros(len(candidates), dtype=bool)
    if exclude_interval is not None:
        excluded = (candidates >= exclude_interval[0]) & (
            candidates <= exclude_interval[1]
        )
    if (~excluded).sum() <= bucket_budget:
        edges = set(float(c) for c in candidates[~excluded])
    else:
        spread = float(profile.impurities.max() - profile.impurities.min())
        eps = max(spread, 1e-12) * 1e-3
        # The corner bound of a bucket loosens with the tuple mass it
        # swallows and tightens with its impurity headroom above the
        # estimated minimum; weight boundary placement by both.
        weights = mass / (profile.impurities - estimated_minimum + eps)
        weights[excluded] = 0.0
        cum = np.cumsum(weights)
        targets = cum[-1] * (np.arange(1, bucket_budget + 1) / bucket_budget)
        positions = np.searchsorted(cum, targets, side="left")
        positions = np.minimum(positions, len(candidates) - 1)
        edges = set(float(c) for c in candidates[positions])
    # Isolate heavy spike values (e.g. "commission == 0" holding half the
    # family) into 1-ulp point buckets: no interval of reals can subdivide
    # a single value, but a point bucket is evaluated exactly instead of
    # corner-bounded, so spikes stop causing false alarms.
    heavy = np.flatnonzero((mass * bucket_budget > 1.0) & ~excluded)
    for i in heavy:
        value = float(candidates[i])
        edges.add(value)
        edges.add(float(np.nextafter(value, -np.inf)))
    edges.update(forced_edges)
    return np.asarray(sorted(edges), dtype=np.float64)


def interval_forced_edges(low: float, high: float) -> tuple[float, float]:
    """Edges that isolate a confidence interval ``[low, high]``.

    ``nextafter(low, -inf)`` closes the last strictly-below bucket at the
    largest float below ``low``; ``high`` closes the last interval bucket.
    Buckets between the two cover only in-interval values and are skipped
    by the failure check (the exact in-interval search supersedes them).
    """
    return (float(np.nextafter(low, -np.inf)), float(high))


def point_bucket_mask(edges: np.ndarray) -> np.ndarray:
    """Buckets that can contain at most one distinct float64 value.

    Bucket ``j >= 1`` is a *point bucket* when its lower edge is exactly
    one ulp below its upper edge — no float lies strictly between, so the
    bucket's only possible candidate is the upper edge itself and the
    failure check may evaluate it exactly instead of corner-bounding.
    The trailing open bucket ``(e_last, inf)`` is never a point bucket.
    """
    mask = np.zeros(len(edges) + 1, dtype=bool)
    if len(edges) >= 2:
        mask[1:-1] = edges[:-1] == np.nextafter(edges[1:], -np.inf)
    return mask


def interval_bucket_range(
    edges: np.ndarray, low: float, high: float
) -> tuple[int, int]:
    """Half-open bucket-index range ``[first, last)`` covering [low, high].

    Buckets with index in the range contain only values inside the closed
    interval, *provided* :func:`interval_forced_edges` edges are present.
    """
    first = int(np.searchsorted(edges, low, side="left"))
    last = int(np.searchsorted(edges, high, side="left")) + 1
    return first, last
