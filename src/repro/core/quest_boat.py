"""BOAT instantiated with the QUEST split selection method.

Section 5 of the paper reports results for a non-impurity-based split
selection method; this module is that instantiation.  QUEST is a natural
fit for the optimistic approach because everything it needs — ANOVA /
chi-square attribute selection and QDA split points — is a function of
*streaming sufficient statistics* (per-class counts, sums, sums of
squares, contingency tables):

* the sampling phase bootstraps QUEST trees and intersects them into a
  skeleton with coarse criteria, exactly as in the impurity mode;
* the cleanup scan accumulates each node's :class:`QuestSufficientStats`
  and holds tuples inside numeric confidence intervals;
* finalization recomputes the QUEST decision *exactly* from the full-data
  statistics and verifies it against the coarse criterion: a different
  selected attribute, a numeric threshold outside the interval, or a
  different categorical subset refutes the node and rebuilds its subtree
  from the collected family.

Exactness caveat (documented, inherent): QUEST statistics are sums of
floats, so the maintained tree equals the reference QUEST tree up to
floating-point summation order.  Our tests compare structures and assert
thresholds to within a relative tolerance; all integer-count based
decisions (the impurity mode) remain bit-exact.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

import numpy as np

from ..config import BoatConfig, SplitConfig
from ..exceptions import SplitSelectionError
from ..kernels import DEFAULT_KERNELS, KernelBackend, get_kernels
from ..splits.base import CategoricalSplit, NumericSplit
from ..splits.quest import QuestSplitSelection, QuestSufficientStats
from ..storage import CLASS_COLUMN, IOStats, Schema, Table, TupleStore
from ..storage import bootstrap_resample, sample_table
from ..tree import DecisionTree, Node, build_reference_tree
from .coarse import CoarseCategorical, CoarseNumeric
from .finalize import config_at_depth


class QuestBoatNode:
    """Skeleton node for the QUEST instantiation."""

    __slots__ = (
        "node_id",
        "depth",
        "criterion",
        "left",
        "right",
        "stats",
        "below_counts",
        "above_counts",
        "held",
        "family_store",
    )

    def __init__(
        self,
        node_id: int,
        depth: int,
        criterion: CoarseNumeric | CoarseCategorical | None,
        schema: Schema,
        config: BoatConfig,
        spill_dir: str | None,
        io_stats: IOStats | None,
    ):
        self.node_id = node_id
        self.depth = depth
        self.criterion = criterion
        self.left: QuestBoatNode | None = None
        self.right: QuestBoatNode | None = None
        self.stats = QuestSufficientStats.empty(schema)
        k = schema.n_classes
        if isinstance(criterion, CoarseNumeric):
            self.below_counts = np.zeros(k, dtype=np.int64)
            self.above_counts = np.zeros(k, dtype=np.int64)
            self.held = TupleStore(
                schema, config.spill_threshold_rows, spill_dir, io_stats
            )
        else:
            self.below_counts = None
            self.above_counts = None
            self.held = None
        if criterion is None:
            self.family_store = TupleStore(
                schema, config.spill_threshold_rows, spill_dir, io_stats
            )
        else:
            self.family_store = None

    @property
    def is_frontier(self) -> bool:
        return self.criterion is None

    def nodes(self):
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            if node.right is not None:
                stack.append(node.right)
            if node.left is not None:
                stack.append(node.left)

    def release(self) -> None:
        for node in self.nodes():
            if node.held is not None:
                node.held.clear()
            if node.family_store is not None:
                node.family_store.clear()


@dataclass
class QuestBoatReport:
    """Diagnostics of one BOAT-QUEST construction."""

    table_size: int
    skeleton_nodes: int = 0
    frontier_nodes: int = 0
    confirmed_splits: int = 0
    rebuilds: int = 0
    rebuild_reasons: list[str] = field(default_factory=list)
    wall_seconds: dict[str, float] = field(default_factory=dict)


@dataclass
class QuestBoatResult:
    tree: DecisionTree
    report: QuestBoatReport


def _intersect(
    nodes: list[Node],
    schema: Schema,
    split_config: SplitConfig,
    config: BoatConfig,
    spill_dir: str | None,
    io_stats: IOStats | None,
    ids: itertools.count,
    depth: int,
    report: QuestBoatReport,
) -> QuestBoatNode:
    report.skeleton_nodes += 1
    criterion: CoarseNumeric | CoarseCategorical | None = None
    if not any(n.is_leaf for n in nodes) and (
        split_config.max_depth is None or depth < split_config.max_depth
    ):
        splits = [n.split for n in nodes]
        first = splits[0]
        same_attr = all(
            s.attribute_index == first.attribute_index
            and type(s) is type(first)
            for s in splits
        )
        if same_attr and isinstance(first, CategoricalSplit):
            if all(s.subset == first.subset for s in splits):
                criterion = CoarseCategorical(first.attribute_index, first.subset)
        elif same_attr:
            values = np.array([s.value for s in splits], dtype=np.float64)
            low, high = float(values.min()), float(values.max())
            pad = config.interval_widening * max(
                high - low, 1e-9 * max(abs(low), abs(high), 1.0)
            )
            criterion = CoarseNumeric(first.attribute_index, low - pad, high + pad)
    node = QuestBoatNode(
        next(ids), depth, criterion, schema, config, spill_dir, io_stats
    )
    if criterion is None:
        report.frontier_nodes += 1
        return node
    node.left = _intersect(
        [n.left for n in nodes],
        schema, split_config, config, spill_dir, io_stats, ids, depth + 1, report,
    )
    node.right = _intersect(
        [n.right for n in nodes],
        schema, split_config, config, spill_dir, io_stats, ids, depth + 1, report,
    )
    return node


def _stream(
    node: QuestBoatNode,
    batch: np.ndarray,
    schema: Schema,
    kernels: KernelBackend = DEFAULT_KERNELS,
) -> None:
    if batch.size == 0:
        return
    node.stats.update(batch, kernels=kernels)
    if node.criterion is None:
        node.family_store.append(batch)
        return
    if isinstance(node.criterion, CoarseCategorical):
        go_left = node.criterion.go_left(batch, schema, kernels)
        _stream(node.left, batch[go_left], schema, kernels)
        _stream(node.right, batch[~go_left], schema, kernels)
        return
    below, held, above = node.criterion.masks(batch, schema, kernels)
    k = schema.n_classes
    node.below_counts += kernels.class_histogram(batch[CLASS_COLUMN][below], k)
    node.above_counts += kernels.class_histogram(batch[CLASS_COLUMN][above], k)
    if held.any():
        node.held.append(batch[held])
    _stream(node.left, batch[below], schema, kernels)
    _stream(node.right, batch[above], schema, kernels)


class _QuestFinalizer:
    def __init__(
        self,
        schema: Schema,
        method: QuestSplitSelection,
        config: SplitConfig,
        report: QuestBoatReport,
    ):
        self._schema = schema
        self._method = method
        self._config = config
        self._report = report
        self._ids = itertools.count()

    def run(self, root: QuestBoatNode) -> DecisionTree:
        tree = DecisionTree(
            self._schema, self._finalize(root, self._schema.empty(0))
        )
        tree.validate()
        return tree

    def _finalize(self, node: QuestBoatNode, inherited: np.ndarray) -> Node:
        stats = self._effective_stats(node, inherited)
        counts = stats.class_counts
        if node.is_frontier:
            family = self._collect(node, inherited)
            sub = build_reference_tree(
                family,
                self._schema,
                self._method,
                config_at_depth(self._config, node.depth),
            )
            return self._graft(sub.root, node.depth)
        if (
            int(counts.sum()) < self._config.min_samples_split
            or int(np.count_nonzero(counts)) <= 1
            or (
                self._config.max_depth is not None
                and node.depth >= self._config.max_depth
            )
        ):
            return Node(next(self._ids), node.depth, counts)
        decision = self._method.decide_from_stats(stats, self._config)
        failure = self._check(node, decision, stats, inherited)
        if failure is not None:
            return self._rebuild(node, inherited, failure)
        self._report.confirmed_splits += 1
        final = Node(next(self._ids), node.depth, counts)
        left_in, right_in = self._partition(node, decision.split, inherited)
        final.make_internal(
            decision.split,
            self._finalize(node.left, left_in),
            self._finalize(node.right, right_in),
        )
        return final

    def _effective_stats(
        self, node: QuestBoatNode, inherited: np.ndarray
    ) -> QuestSufficientStats:
        if len(inherited) == 0:
            return node.stats
        merged = QuestSufficientStats.empty(self._schema)
        merged.class_counts = node.stats.class_counts.copy()
        merged.numeric_sums = node.stats.numeric_sums.copy()
        merged.numeric_sumsq = node.stats.numeric_sumsq.copy()
        merged.contingency = [c.copy() for c in node.stats.contingency]
        merged.update(inherited)
        return merged

    def _check(
        self,
        node: QuestBoatNode,
        decision,
        stats: QuestSufficientStats,
        inherited: np.ndarray,
    ) -> str | None:
        criterion = node.criterion
        if decision is None:
            return "exact QUEST decision is a leaf, coarse criterion splits"
        split = decision.split
        if split.attribute_index != criterion.attribute_index:
            name = self._schema[split.attribute_index].name
            return f"exact QUEST selection picked attribute {name}"
        if isinstance(criterion, CoarseCategorical):
            if not isinstance(split, CategoricalSplit) or (
                split.subset != criterion.subset
            ):
                return "exact QUEST categorical subset differs"
            return self._check_leaf_sizes(node, split, inherited)
        if not isinstance(split, NumericSplit):
            return "attribute kind mismatch"
        if not criterion.low <= split.value <= criterion.high:
            return (
                f"exact QDA threshold {split.value:g} outside confidence "
                f"interval [{criterion.low:g}, {criterion.high:g}]"
            )
        return self._check_leaf_sizes(node, split, inherited)

    def _check_leaf_sizes(
        self, node: QuestBoatNode, split, inherited: np.ndarray
    ) -> str | None:
        left_in, right_in = self._partition(node, split, inherited)
        n_left = self._side_total(node, split, left=True, inherited=left_in)
        n_right = self._side_total(node, split, left=False, inherited=right_in)
        min_leaf = self._config.min_samples_leaf
        if n_left < min_leaf or n_right < min_leaf:
            return "QUEST split violates min_samples_leaf"
        if n_left == 0 or n_right == 0:
            return "QUEST split produced an empty side"
        return None

    def _side_total(
        self, node: QuestBoatNode, split, left: bool, inherited: np.ndarray
    ) -> int:
        if isinstance(node.criterion, CoarseNumeric):
            base = node.below_counts if left else node.above_counts
            return int(base.sum()) + len(inherited)
        side = node.left if left else node.right
        return int(side.stats.class_counts.sum()) + len(inherited)

    def _partition(
        self, node: QuestBoatNode, split, inherited: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Tuples flowing to each child beyond what streamed there already."""
        if isinstance(node.criterion, CoarseCategorical):
            go_left = split.evaluate(inherited, self._schema)
            return inherited[go_left], inherited[~go_left]
        held = node.held.read_all()
        pool = held if len(inherited) == 0 else (
            np.concatenate([held, inherited]) if len(held) else inherited
        )
        go_left = split.evaluate(pool, self._schema)
        return pool[go_left], pool[~go_left]

    def _rebuild(
        self, node: QuestBoatNode, inherited: np.ndarray, reason: str
    ) -> Node:
        self._report.rebuilds += 1
        self._report.rebuild_reasons.append(
            f"node {node.node_id} (depth {node.depth}): {reason}"
        )
        family = self._collect(node, inherited)
        node.release()
        sub = build_reference_tree(
            family,
            self._schema,
            self._method,
            config_at_depth(self._config, node.depth),
        )
        return self._graft(sub.root, node.depth)

    def _collect(self, node: QuestBoatNode, inherited: np.ndarray) -> np.ndarray:
        parts = [inherited] if len(inherited) else []
        for sub in node.nodes():
            if sub.held is not None and len(sub.held):
                parts.append(sub.held.read_all())
            if sub.family_store is not None and len(sub.family_store):
                parts.append(sub.family_store.read_all())
        if not parts:
            return self._schema.empty(0)
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    def _graft(self, root: Node, depth_offset: int) -> Node:
        stack = [root]
        while stack:
            sub = stack.pop()
            sub.node_id = next(self._ids)
            sub.depth += depth_offset
            if not sub.is_leaf:
                stack.append(sub.right)
                stack.append(sub.left)
        return root


def quest_boat_build(
    table: Table,
    method: QuestSplitSelection | None = None,
    split_config: SplitConfig | None = None,
    boat_config: BoatConfig | None = None,
    spill_dir: str | None = None,
) -> QuestBoatResult:
    """Build a QUEST decision tree with the optimistic two-scan approach.

    The inherent caveat relative to the impurity mode: equality with the
    reference QUEST tree holds up to floating-point summation order of
    the sufficient statistics (see the module docstring).
    """
    method = method or QuestSplitSelection()
    if not isinstance(method, QuestSplitSelection):
        raise SplitSelectionError("quest_boat_build requires QuestSplitSelection")
    split_config = split_config or SplitConfig()
    boat_config = boat_config or BoatConfig()
    report = QuestBoatReport(table_size=len(table))
    rng = np.random.default_rng(boat_config.seed)
    schema = table.schema
    io = table.io_stats

    t0 = time.perf_counter()
    sample = sample_table(table, boat_config.sample_size, rng, boat_config.batch_rows)
    if len(sample) >= len(table):
        tree = build_reference_tree(sample, schema, method, split_config)
        report.wall_seconds["in_memory_build"] = time.perf_counter() - t0
        return QuestBoatResult(tree=tree, report=report)
    subsample = boat_config.bootstrap_subsample or len(sample)
    roots = []
    for _ in range(boat_config.bootstrap_repetitions):
        resample = bootstrap_resample(sample, subsample, rng)
        roots.append(
            build_reference_tree(resample, schema, method, split_config).root
        )
    ids = itertools.count()
    skeleton = _intersect(
        roots, schema, split_config, boat_config, spill_dir, io, ids, 0, report
    )
    report.wall_seconds["sampling"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    kernels = get_kernels(boat_config.kernel_backend)
    for batch in table.scan(boat_config.batch_rows):
        _stream(skeleton, batch, schema, kernels)
    report.wall_seconds["cleanup_scan"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    finalizer = _QuestFinalizer(schema, method, split_config, report)
    tree = finalizer.run(skeleton)
    report.wall_seconds["finalize"] = time.perf_counter() - t0
    skeleton.release()
    return QuestBoatResult(tree=tree, report=report)
