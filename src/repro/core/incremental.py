"""Incremental decision tree maintenance (§4 of the paper).

:class:`IncrementalBoat` keeps, between updates, everything BOAT's cleanup
phase collected: the skeleton with its coarse criteria, the per-node
statistics, the held tuples inside each confidence interval, and the
frontier families.  To incorporate a chunk of insertions (or deletions)
it streams the chunk down the skeleton exactly as the cleanup scan would
— one pass over the *chunk*, never over the original database — and then
re-runs the finalization pass.

Guarantees, mirroring the paper:

* the maintained tree is *exactly* the tree a from-scratch build on the
  updated database would produce;
* if the chunk is drawn from the same distribution, updates touch only
  counts and held stores, and unchanged subtrees are served from the
  finalization cache — update cost is independent of |D|;
* if the distribution changed, the failure checks fire exactly where the
  tree is no longer defensible, and only those subtrees are rebuilt (with
  a fresh mini-BOAT sampling phase so future updates stay cheap).  The
  rebuild log doubles as a drift report for the analyst.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

import numpy as np

from ..config import BoatConfig, SplitConfig
from ..exceptions import TreeStructureError
from ..observability import NULL_TRACER, NullTracer, Tracer
from ..splits.methods import ImpuritySplitSelection
from ..storage import IOStats, Schema, Table
from ..tree import DecisionTree
from .bootstrap import sampling_phase
from .finalize import FinalizeReport, Finalizer, config_at_depth
from .state import BoatNode, collect_family, stream_batch


@dataclass
class UpdateReport:
    """Diagnostics of one insert/delete/build operation."""

    operation: str
    chunk_size: int
    wall_seconds: float
    finalize: FinalizeReport
    #: Human-readable description of where the tree was rebuilt — the §4
    #: drift report ("specific parts of the tree changed significantly").
    drift: list[str] = field(default_factory=list)


class IncrementalBoat:
    """A decision tree maintained under chunk insertions and deletions."""

    def __init__(
        self,
        schema: Schema,
        method: ImpuritySplitSelection,
        split_config: SplitConfig | None = None,
        boat_config: BoatConfig | None = None,
        spill_dir: str | None = None,
        io_stats: IOStats | None = None,
        tracer: Tracer | NullTracer | None = None,
    ):
        self._schema = schema
        self._method = method
        self._split_config = split_config or SplitConfig()
        self._config = boat_config or BoatConfig()
        self._spill_dir = spill_dir
        self._io = io_stats
        if tracer is None:
            tracer = Tracer(io_stats) if self._config.trace else NULL_TRACER
        #: The maintainer's tracer: one ``incremental_build`` span for the
        #: initial construction, one ``incremental`` span per update.
        self.tracer = tracer
        self._ids = itertools.count()
        self._node_ids = itertools.count(1_000_000)
        self._rng = np.random.default_rng(self._config.seed)
        self._skeleton: BoatNode | None = None
        self._tree: DecisionTree | None = None
        self._n_rows = 0
        self.reports: list[UpdateReport] = []
        self._listeners: list = []

    # -- construction ------------------------------------------------------

    @classmethod
    def build(
        cls,
        table: Table,
        method: ImpuritySplitSelection,
        split_config: SplitConfig | None = None,
        boat_config: BoatConfig | None = None,
        spill_dir: str | None = None,
        tracer: Tracer | NullTracer | None = None,
    ) -> "IncrementalBoat":
        """Initial construction from a training table (two scans)."""
        maintainer = cls(
            table.schema,
            method,
            split_config,
            boat_config,
            spill_dir,
            table.io_stats,
            tracer=tracer,
        )
        maintainer._initial_build(table)
        return maintainer

    @classmethod
    def from_chunk(
        cls,
        chunk: np.ndarray,
        schema: Schema,
        method: ImpuritySplitSelection,
        split_config: SplitConfig | None = None,
        boat_config: BoatConfig | None = None,
        spill_dir: str | None = None,
    ) -> "IncrementalBoat":
        """Start a maintained tree from an in-memory first chunk."""
        maintainer = cls(schema, method, split_config, boat_config, spill_dir)
        start = time.perf_counter()
        with maintainer.tracer.span("incremental_build", table_size=len(chunk)):
            # _grow_skeleton both builds the skeleton and streams the chunk
            # through it; streaming again here would double-count every tuple.
            maintainer._skeleton = maintainer._grow_skeleton(chunk, depth=0)
            maintainer._n_rows = len(chunk)
            report = maintainer._finalize()
        maintainer._record("build", len(chunk), start, report)
        return maintainer

    def _initial_build(self, table: Table) -> None:
        from ..storage import sample_table  # local import to avoid cycle noise

        start = time.perf_counter()
        with self.tracer.span("incremental_build", table_size=len(table)):
            with self.tracer.span(
                "sample", requested_rows=self._config.sample_size
            ) as sample_span:
                sample = sample_table(
                    table, self._config.sample_size, self._rng, self._config.batch_rows
                )
                sample_span.set(sample_rows=len(sample))
            if len(sample) >= len(table):
                self._skeleton = self._frontier_node(depth=0)
            else:
                result = sampling_phase(
                    sample,
                    self._schema,
                    self._method,
                    self._split_config,
                    self._config,
                    len(table),
                    self._rng,
                    self._spill_dir,
                    self._io,
                    tracer=self.tracer,
                )
                self._skeleton = result.root
            with self.tracer.span("cleanup", batch_rows=self._config.batch_rows):
                for batch in table.scan(self._config.batch_rows):
                    stream_batch(self._skeleton, batch, self._schema, sign=1)
            self._n_rows = len(table)
            report = self._finalize()
        self._record("build", len(table), start, report)

    # -- updates --------------------------------------------------------------

    def insert(self, chunk: np.ndarray) -> UpdateReport:
        """Incorporate new training tuples; returns the update report."""
        return self._update(chunk, "insert", sign=1)

    def delete(self, chunk: np.ndarray) -> UpdateReport:
        """Expire training tuples (bitwise record match required)."""
        return self._update(chunk, "delete", sign=-1)

    def _update(self, chunk: np.ndarray, operation: str, sign: int) -> UpdateReport:
        if self._skeleton is None:
            raise TreeStructureError("IncrementalBoat has not been built yet")
        self._schema.validate_batch(chunk)
        start = time.perf_counter()
        with self.tracer.span(
            "incremental", operation=operation, chunk_size=len(chunk)
        ):
            for offset in range(0, len(chunk), self._config.batch_rows):
                stream_batch(
                    self._skeleton,
                    chunk[offset : offset + self._config.batch_rows],
                    self._schema,
                    sign=sign,
                )
            self._n_rows += sign * len(chunk)
            if sign > 0:
                self._deepen_frontiers()
            report = self._finalize()
        return self._record(operation, len(chunk), start, report)

    def _deepen_frontiers(self) -> None:
        """Convert over-grown frontier families into mini-BOAT subtrees.

        A frontier family keeps absorbing inserts; once it clearly exceeds
        the in-memory regime, growing a skeleton over it moves most of its
        tuples into held stores and certain-leaf sub-frontiers, keeping
        later update passes cheap.  A watermark backs off retries when the
        bootstrap trees disagree at the family's root (instability), which
        would otherwise re-run the sampling phase on every update.
        """
        threshold = 2 * max(self._config.sample_size, self._config.inmemory_threshold)
        for node in list(self.skeleton.nodes()):
            if not node.is_frontier:
                continue
            size = len(node.family_store)
            if size <= threshold or size <= node.deepen_watermark:
                continue
            family = node.family_store.read_all()
            fresh = self._grow_skeleton(family, node.depth)
            if fresh.is_frontier:
                fresh.release()
                node.deepen_watermark = int(1.5 * size)
                continue
            node.release()
            self._swap(node, fresh)

    def _swap(self, old: BoatNode, fresh: BoatNode) -> None:
        parent = old.parent
        fresh.parent = parent
        if parent is None:
            self._skeleton = fresh
        elif parent.left is old:
            parent.left = fresh
        elif parent.right is old:
            parent.right = fresh
        else:  # pragma: no cover - defensive
            raise TreeStructureError("skeleton parent link broken")

    # -- finalization -------------------------------------------------------------

    def _finalize(self) -> FinalizeReport:
        finalizer = Finalizer(
            self._schema,
            self._method,
            self._split_config,
            rebuild=self._unused_static_rebuild,
            keep_state=True,
            skeleton_rebuild=self._grow_skeleton,
            id_counter=self._ids,
        )
        with self.tracer.span("finalize") as span:
            self._tree = finalizer.run(self._skeleton)
            self._tree.validate()
            span.set(
                confirmed_splits=finalizer.report.confirmed_splits,
                frontier_completions=finalizer.report.frontier_completions,
                rebuilds=finalizer.report.rebuilds,
            )
        if finalizer.new_root is not None:
            self._skeleton = finalizer.new_root
        return finalizer.report

    @staticmethod
    def _unused_static_rebuild(family: np.ndarray, depth: int):  # pragma: no cover
        raise TreeStructureError(
            "incremental finalization must use the skeleton rebuild path"
        )

    def add_listener(self, listener) -> None:
        """Register ``listener(tree)`` to run after every build/update.

        Listeners fire once finalization has produced the new exact tree
        — the hook a :class:`~repro.serve.ModelRegistry` uses to publish
        each maintained tree to live traffic (see
        :meth:`repro.serve.ModelRegistry.follow`).  Listener exceptions
        propagate to the updater: a failed publish should fail the update
        loudly, not serve stale predictions silently.
        """
        self._listeners.append(listener)

    def _record(
        self, operation: str, size: int, start: float, report: FinalizeReport
    ) -> UpdateReport:
        update = UpdateReport(
            operation=operation,
            chunk_size=size,
            wall_seconds=time.perf_counter() - start,
            finalize=report,
            drift=list(report.rebuild_reasons),
        )
        self.reports.append(update)
        for listener in self._listeners:
            listener(self._tree)
        return update

    # -- skeleton (re)construction ------------------------------------------------

    def _frontier_node(self, depth: int) -> BoatNode:
        return BoatNode(
            next(self._node_ids),
            depth,
            None,
            self._schema,
            {},
            self._config,
            self._spill_dir,
            self._io,
        )

    def _grow_skeleton(
        self, family: np.ndarray, depth: int, force_frontier: bool = False
    ) -> BoatNode:
        """A fresh, fully populated skeleton subtree for ``family``.

        Small families become a single frontier node (the in-memory
        regime); larger ones get a mini-BOAT sampling phase so that
        subsequent updates in this region stay cheap.  ``force_frontier``
        is the finalizer's termination escape hatch.
        """
        if force_frontier or len(family) <= self._config.sample_size:
            node = self._frontier_node(depth)
        else:
            size = min(self._config.sample_size, len(family))
            idx = self._rng.choice(len(family), size=size, replace=False)
            result = sampling_phase(
                family[idx],
                self._schema,
                self._method,
                config_at_depth(self._split_config, depth),
                self._config,
                len(family),
                self._rng,
                self._spill_dir,
                self._io,
                tracer=self.tracer,
            )
            node = result.root
            for sub in node.nodes():
                sub.node_id = next(self._node_ids)
                sub.depth += depth
        for offset in range(0, len(family), self._config.batch_rows):
            stream_batch(
                node,
                family[offset : offset + self._config.batch_rows],
                self._schema,
                sign=1,
            )
        return node

    # -- inspection ---------------------------------------------------------------------

    @property
    def tree(self) -> DecisionTree:
        """The current maintained tree (a snapshot; safe to keep)."""
        if self._tree is None:
            raise TreeStructureError("IncrementalBoat has not been built yet")
        return self._tree

    @property
    def schema(self) -> Schema:
        """The training schema (used by streaming front ends to validate)."""
        return self._schema

    @property
    def n_rows(self) -> int:
        """Number of training tuples currently represented."""
        return self._n_rows

    @property
    def skeleton(self) -> BoatNode:
        if self._skeleton is None:
            raise TreeStructureError("IncrementalBoat has not been built yet")
        return self._skeleton

    def stored_rows(self) -> int:
        """Total tuples across all skeleton stores (consistency checks)."""
        total = 0
        for node in self.skeleton.nodes():
            if node.held is not None:
                total += len(node.held)
            if node.family_store is not None:
                total += len(node.family_store)
        return total

    def materialize(self) -> np.ndarray:
        """Reassemble the complete current training multiset from stores."""
        return collect_family(self.skeleton, self._schema.empty(0), self._schema)

    def close(self) -> None:
        """Release every store held by the skeleton."""
        if self._skeleton is not None:
            self._skeleton.release()
