"""The BOAT driver (§3.5): sampling phase + cleanup scan + finalization.

:func:`boat_build` constructs, from an out-of-core training table, exactly
the tree the reference builder would grow on the full data — in two scans
(one to draw the sample, one cleanup scan) plus localized rebuild work
when a coarse criterion is refuted.

The returned :class:`BoatReport` carries per-phase wall-clock times and
I/O-counter deltas so benchmarks can report both views of cost.  Pass a
:class:`~repro.observability.Tracer` (or set ``BoatConfig.trace``) to
additionally record a structured span tree — ``sample`` → ``bootstrap``
→ ``coarse`` → ``cleanup`` → ``finalize`` — whose counters make the
two-scan claim machine-checkable (see ``docs/OBSERVABILITY.md``).

Failure hygiene: any error escaping the build (including injected I/O
faults mid-scan) releases every held/family store the skeleton created,
so no temporary spill files survive a failed construction, and raw
:class:`OSError` from the storage layer surfaces as a
:class:`~repro.exceptions.StorageError`.

Crash safety: with ``BoatConfig.checkpoint_dir`` set the build persists
its skeleton and cleanup-scan progress as it goes (durable spill files
under the checkpoint directory deliberately *do* survive a failure —
they are the recovery state) and a killed build can be finished by
:func:`repro.recovery.resume_build`, producing a byte-identical tree.
``BoatConfig.scan_retries`` additionally absorbs transient ``IOError``s
mid-scan without failing the build at all.  See ``docs/RECOVERY.md``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..config import BoatConfig, SplitConfig
from ..exceptions import ReproError, StorageError
from ..kernels import get_kernels
from ..observability import NULL_TRACER, NullTracer, TraceReport, Tracer
from ..parallel import WorkerPool
from ..splits.methods import ImpuritySplitSelection
from ..storage import IOStats, Schema, Table, sample_table
from ..tree import DecisionTree, build_reference_tree
from .bootstrap import SamplingReport, sampling_phase
from .cleanup import cleanup_scan
from .finalize import FinalizeReport, finalize_tree, prefetch_frontier_subtrees
from .workers import init_build_context


@dataclass
class BoatReport:
    """Diagnostics of one static BOAT construction.

    Attributes:
        mode: "boat" for the full algorithm, "in-memory" when the table
            was no larger than the sample and BOAT switched to the
            reference builder outright.
        table_size: |D|.
        sampling / finalize: phase diagnostics (None in in-memory mode).
        wall_seconds: per-phase wall-clock times.
        io: per-phase I/O deltas (only phases that touched storage).
        workers: resolved worker count of the execution pool.
        parallel_backend: resolved backend ("serial" when workers == 1).
        trace: the phase-span trace, when tracing was enabled.
    """

    mode: str
    table_size: int
    sampling: SamplingReport | None = None
    finalize: FinalizeReport | None = None
    wall_seconds: dict[str, float] = field(default_factory=dict)
    io: dict[str, IOStats] = field(default_factory=dict)
    workers: int = 1
    parallel_backend: str = "serial"
    trace: TraceReport | None = None

    @property
    def total_seconds(self) -> float:
        return sum(self.wall_seconds.values())


@dataclass
class BoatResult:
    """A finished tree plus its construction report."""

    tree: DecisionTree
    report: BoatReport


def make_build_pool(
    sample: np.ndarray,
    schema: Schema,
    method: ImpuritySplitSelection,
    split_config: SplitConfig,
    boat_config: BoatConfig,
    tracer: Tracer | NullTracer | None = None,
) -> WorkerPool:
    """The worker pool for one BOAT build, carrying the shared build context.

    Process workers receive (sample, schema, method, split config,
    subsample size) once through the pool initializer; the thread and
    serial backends run the same initializer in the parent.  Use as a
    context manager so workers are reclaimed when the build ends.
    """
    subsample = boat_config.bootstrap_subsample or len(sample)
    return WorkerPool(
        boat_config.n_workers,
        boat_config.parallel_backend,
        initializer=init_build_context,
        initargs=(sample, schema, method, split_config, subsample),
        tracer=tracer,
    )


def _resolve_tracer(
    tracer: Tracer | NullTracer | None, boat_config: BoatConfig, io: IOStats | None
) -> Tracer | NullTracer:
    if tracer is not None:
        return tracer
    if boat_config.trace:
        return Tracer(io)
    return NULL_TRACER


def boat_build(
    table: Table,
    method: ImpuritySplitSelection,
    split_config: SplitConfig | None = None,
    boat_config: BoatConfig | None = None,
    spill_dir: str | None = None,
    tracer: Tracer | NullTracer | None = None,
) -> BoatResult:
    """Build the exact reference tree for ``table`` with the BOAT algorithm.

    Args:
        table: the training database D (its ``io_stats``, if any, is
            charged for every scan).
        method: an impurity-based split selection method; the output tree
            is identical to ``build_reference_tree(D, method)``.
        split_config: stopping rules (part of the tree's identity).
        boat_config: BOAT knobs (sample size, bootstraps, buckets...) —
            affect speed and rebuild frequency, never the output.
        spill_dir: directory for temporary held/family spill files.
        tracer: phase tracer; defaults to a fresh one over the table's
            I/O stats when ``boat_config.trace`` is set, else disabled.
            Tracing never changes the output tree.
    """
    split_config = split_config or SplitConfig()
    boat_config = boat_config or BoatConfig()
    rng = np.random.default_rng(boat_config.seed)
    io = table.io_stats
    tracer = _resolve_tracer(tracer, boat_config, io)
    report = BoatReport(mode="boat", table_size=len(table))

    # Recovery hooks (imported lazily: repro.recovery imports this module).
    checkpoint = None
    durable_dir = None
    scan_table: Table = table
    if boat_config.checkpoint_dir or boat_config.scan_retries > 0:
        from ..recovery import CheckpointManager, build_digest, wrap_retry

        if boat_config.checkpoint_dir:
            checkpoint = CheckpointManager(
                boat_config.checkpoint_dir,
                boat_config.checkpoint_every_batches,
                tracer,
            )
            checkpoint.begin(
                table.schema,
                len(table),
                build_digest(table.schema, len(table), split_config, boat_config),
            )
            durable_dir = checkpoint.spill_dir
        scan_table = wrap_retry(table, boat_config, tracer)

    def phase(name: str, start: float, io_before: IOStats | None) -> None:
        report.wall_seconds[name] = time.perf_counter() - start
        if io is not None and io_before is not None:
            report.io[name] = io.delta_since(io_before)

    result = None
    try:
        with tracer.span("boat_build", table_size=len(table)):
            # -- sampling phase ----------------------------------------------
            t0 = time.perf_counter()
            io_before = io.snapshot() if io is not None else None
            with tracer.span(
                "sample", requested_rows=boat_config.sample_size
            ) as sample_span:
                sample = sample_table(
                    scan_table, boat_config.sample_size, rng, boat_config.batch_rows
                )
                sample_span.set(sample_rows=len(sample))
            if len(sample) >= len(table):
                # D fits in the sample: the paper's in-memory switch applies
                # at the root; run the reference builder directly.
                with tracer.span("in_memory_build"):
                    tree = build_reference_tree(
                        sample, table.schema, method, split_config
                    )
                phase("in_memory_build", t0, io_before)
                report.mode = "in-memory"
                if checkpoint is not None:
                    checkpoint.finish()
                if tracer.enabled:
                    report.trace = tracer.report()
                return BoatResult(tree=tree, report=report)
            with make_build_pool(
                sample, table.schema, method, split_config, boat_config, tracer
            ) as pool:
                result = sampling_phase(
                    sample,
                    table.schema,
                    method,
                    split_config,
                    boat_config,
                    len(table),
                    rng,
                    spill_dir,
                    io,
                    pool=pool,
                    tracer=tracer,
                    durable_dir=durable_dir,
                )
                report.sampling = result.report
                phase("sampling", t0, io_before)
                if checkpoint is not None:
                    # The skeleton is immutable from here on; persisting it
                    # now makes every later crash resumable.
                    checkpoint.save_skeleton(result.root)

                # -- cleanup scan --------------------------------------------
                t0 = time.perf_counter()
                io_before = io.snapshot() if io is not None else None
                cleanup_scan(
                    result.root,
                    scan_table,
                    table.schema,
                    boat_config.batch_rows,
                    pool,
                    tracer=tracer,
                    progress=(
                        None
                        if checkpoint is None
                        else checkpoint.progress_hook(result.root)
                    ),
                    kernels=get_kernels(boat_config.kernel_backend),
                    # Checkpointing needs row-granular scan progress, which
                    # the aggregation pushdown cannot report; resume paths
                    # use the streamed scan.
                    sql_pushdown=(
                        boat_config.sql_pushdown and checkpoint is None
                    ),
                )
                phase("cleanup_scan", t0, io_before)
                if checkpoint is not None:
                    # Fully accumulated: a crash during finalization resumes
                    # with zero scan rows to re-read.
                    checkpoint.checkpoint_cleanup(result.root, len(table))

                # -- finalization --------------------------------------------
                t0 = time.perf_counter()
                io_before = io.snapshot() if io is not None else None
                with tracer.span("finalize") as finalize_span:
                    prefetch = prefetch_frontier_subtrees(
                        result.root, table.schema, method, split_config, pool
                    )
                    tree, finalize_report = finalize_tree(
                        result.root,
                        table.schema,
                        method,
                        split_config,
                        prefetch=prefetch,
                    )
                    finalize_span.set(
                        confirmed_splits=finalize_report.confirmed_splits,
                        frontier_completions=finalize_report.frontier_completions,
                        rebuilds=finalize_report.rebuilds,
                        tree_nodes=tree.n_nodes,
                    )
                report.finalize = finalize_report
                phase("finalize", t0, io_before)
                report.workers = pool.n_workers
                report.parallel_backend = pool.backend
    except ReproError:
        raise
    except OSError as exc:
        # A device/file error mid-build must not surface as a raw OSError
        # with a half-built skeleton behind it.
        raise StorageError(f"I/O failure during BOAT construction: {exc}") from exc
    finally:
        # Success or failure, the skeleton's held/family stores (and any
        # spill files they own) are torn down before we return.
        if result is not None:
            result.root.release()
    if checkpoint is not None:
        checkpoint.finish()
    if tracer.enabled:
        report.trace = tracer.report()
    return BoatResult(tree=tree, report=report)
