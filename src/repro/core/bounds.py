"""Lemma 3.1: corner-point lower bounds on concave impurity over buckets.

Every attribute value x determines a *stamp point* — the vector of
per-class counts of tuples with ``X <= x``.  Because the weighted impurity
is concave in the stamp point, its minimum over all stamp points between
two bucket-boundary stamp points ``s_lo <= s_hi`` (componentwise) is
bounded below by its minimum over the ``2^k`` corner points of the
hyper-rectangle they span (Mangasarian [Man94], as applied in the paper).

The failure check compares these bucket lower bounds against the best
impurity ``i'`` found inside the confidence interval: a bucket whose
bound beats ``i'`` *might* contain the true split point, so the coarse
criterion cannot be trusted and the subtree is rebuilt.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import SplitSelectionError
from ..splits.impurity import ImpurityMeasure

#: Guard: 2^k corner enumeration is exponential in the class count.
MAX_CLASSES_FOR_BOUND = 16


def corner_points(stamp_lo: np.ndarray, stamp_hi: np.ndarray) -> np.ndarray:
    """The 2^k corners of the hyper-rectangle spanned by two stamp points."""
    k = len(stamp_lo)
    if k > MAX_CLASSES_FOR_BOUND:
        raise SplitSelectionError(
            f"corner bound limited to {MAX_CLASSES_FOR_BOUND} classes, got {k}"
        )
    choices = np.stack([stamp_lo, stamp_hi])  # (2, k)
    selectors = (
        np.arange(1 << k)[:, np.newaxis] >> np.arange(k)[np.newaxis, :]
    ) & 1  # (2^k, k) of {0, 1}
    return choices[selectors, np.arange(k)[np.newaxis, :]]


def bucket_lower_bound(
    stamp_lo: np.ndarray,
    stamp_hi: np.ndarray,
    total_counts: np.ndarray,
    impurity: ImpurityMeasure,
) -> float:
    """Lower bound on weighted impurity over one bucket's stamp points."""
    corners = corner_points(
        np.asarray(stamp_lo, dtype=np.int64), np.asarray(stamp_hi, dtype=np.int64)
    )
    return float(impurity.weighted(corners, total_counts).min())


def bucket_lower_bounds(
    bucket_counts: np.ndarray,
    total_counts: np.ndarray,
    impurity: ImpurityMeasure,
) -> np.ndarray:
    """Lower bounds for every bucket of one attribute's discretization.

    Args:
        bucket_counts: (m+1, k) per-bucket class counts (m edges make m+1
            buckets).
        total_counts: (k,) family class counts.  May exceed the bucket
            column sums only if callers pass partial counts — normally they
            are equal.
        impurity: the concave measure.

    Returns:
        (m+1,) float64 array of per-bucket lower bounds.
    """
    bucket_counts = np.asarray(bucket_counts, dtype=np.int64)
    n_buckets, k = bucket_counts.shape
    cum = np.cumsum(bucket_counts, axis=0)  # stamp points at bucket upper edges
    stamps_hi = cum
    stamps_lo = np.vstack([np.zeros((1, k), dtype=np.int64), cum[:-1]])
    all_corners = []
    for j in range(n_buckets):
        all_corners.append(corner_points(stamps_lo[j], stamps_hi[j]))
    flat = np.concatenate(all_corners)
    values = impurity.weighted(flat, total_counts)
    return values.reshape(n_buckets, -1).min(axis=1)


def admissible_bucket_mask(
    bucket_counts: np.ndarray, min_samples_leaf: int
) -> np.ndarray:
    """Buckets that could contain an *admissible* candidate split.

    A candidate in bucket j has a left-side size between the cumulative
    totals at the bucket's lower and upper edges; if even the largest
    possible left side is below ``min_samples_leaf`` (or the smallest
    possible right side is), no candidate in the bucket is admissible and
    the bucket can be excluded from the failure check without risking
    correctness.
    """
    totals = np.asarray(bucket_counts, dtype=np.int64).sum(axis=1)
    cum_hi = np.cumsum(totals)
    n = int(cum_hi[-1]) if len(cum_hi) else 0
    cum_lo = np.concatenate([[0], cum_hi[:-1]])
    # A candidate in bucket j has left size in [cum_lo[j] + 1, cum_hi[j]];
    # the bucket is excludable only if no integer in that range admits both
    # children (empty buckets have no candidates at all).
    return (
        (totals > 0)
        & (cum_hi >= min_samples_leaf)
        & (n - cum_lo - 1 >= min_samples_leaf)
    )
