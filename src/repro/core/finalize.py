"""BOAT finalization: coarse → exact splitting criteria, with failure detection.

After the cleanup scan, the skeleton is processed top-down (§3.3–§3.5):

1. compute the node's *effective* statistics (persistent counts plus
   ancestor-held tuples re-routed to it),
2. find the exact best split the coarse criterion permits — for a numeric
   criterion, evaluate every candidate value inside the confidence
   interval from the held tuples; for a categorical criterion, evaluate
   the attribute exactly from its contingency matrix,
3. verify, via exact categorical evaluations and the Lemma 3.1 bucket
   lower bounds, that no candidate outside the coarse criterion could be
   the reference builder's choice (§3.4),
4. on success, emit the final split and push the held tuples to the
   children; on failure, discard the subtree and rebuild it from its
   collected family.

Tie-break bookkeeping mirrors the reference builder exactly: candidates
are ranked by (impurity, attribute index, split value / subset order), so
a competing candidate at an earlier rank triggers a rebuild even on exact
impurity equality, while a later-ranked tie never can.  Lower bounds make
the comparison conservative — false alarms cost a rebuild, never
correctness.

Two operating modes:

* **static** (``keep_state=False``) — one-shot construction; stores of
  finished subtrees are released, rebuilds go straight to the in-memory
  reference builder.
* **incremental** (``keep_state=True``) — §4 maintenance; stores and
  statistics survive the pass, unchanged subtrees are served from a
  per-node cache (so update cost tracks the *change*, not the database
  size), and rebuilds construct a fresh, fully populated skeleton subtree
  from the subtree's own stores so future updates keep working.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from ..config import SplitConfig, config_at_depth
from ..kernels import DEFAULT_KERNELS
from ..parallel import WorkerPool
from ..splits.base import CategoricalSplit, NumericSplit
from ..splits.categorical import best_categorical_split_from_counts
from ..splits.methods import ImpuritySplitSelection
from ..splits.numeric import numeric_profile
from ..storage import CLASS_COLUMN, Schema
from ..tree import DecisionTree, Node, build_reference_tree, tree_from_dict
from .bounds import admissible_bucket_mask, bucket_lower_bounds
from .coarse import CoarseNumeric
from .discretize import interval_bucket_range, point_bucket_mask
from .state import BoatNode, EffectiveStats, collect_family, effective_stats
from .workers import frontier_subtree_task

#: Static rebuild strategy: collected family + depth -> finished subtree.
RebuildFn = Callable[[np.ndarray, int], Node]

#: Incremental rebuild strategy: (store-resident family, depth,
#: force_frontier) -> fresh, fully populated skeleton subtree.  The
#: force_frontier flag demands a plain frontier node; the finalizer sets
#: it when a freshly rebuilt subtree fails verification again, which
#: guarantees termination (frontier completion never re-verifies).
SkeletonRebuildFn = Callable[[np.ndarray, int, bool], BoatNode]


@dataclass
class FinalizeReport:
    """What happened during one finalization pass."""

    confirmed_splits: int = 0
    leaves: int = 0
    frontier_completions: int = 0
    frontier_prefetch_hits: int = 0
    cache_hits: int = 0
    rebuilds: int = 0
    rebuilt_tuples: int = 0
    rebuild_reasons: list[str] = field(default_factory=list)
    held_candidates: int = 0


class Finalizer:
    """One finalization pass over a populated skeleton."""

    def __init__(
        self,
        schema: Schema,
        method: ImpuritySplitSelection,
        config: SplitConfig,
        rebuild: RebuildFn,
        keep_state: bool = False,
        skeleton_rebuild: SkeletonRebuildFn | None = None,
        id_counter: Iterator[int] | None = None,
        prefetch: dict[int, Node] | None = None,
    ):
        self._schema = schema
        self._method = method
        self._impurity = method.impurity
        self._kernels = getattr(method, "kernels", DEFAULT_KERNELS)
        self._config = config
        self._rebuild = rebuild
        self._keep_state = keep_state
        self._skeleton_rebuild = skeleton_rebuild
        self._prefetch = prefetch or {}
        self._ids = id_counter if id_counter is not None else itertools.count()
        self._fresh_nodes: set[int] = set()
        self.report = FinalizeReport()
        #: Set when the skeleton root itself was replaced by a rebuild.
        self.new_root: BoatNode | None = None

    # -- public entry -------------------------------------------------------

    def run(self, root: BoatNode) -> DecisionTree:
        final_root = self._finalize(root, self._schema.empty(0), is_root=True)
        tree = DecisionTree(self._schema, final_root)
        return tree

    # -- recursion ------------------------------------------------------------

    def _finalize(
        self, node: BoatNode, inherited: np.ndarray, is_root: bool = False
    ) -> Node:
        cache_key = self._cache_key(inherited)
        if (
            self._keep_state
            and not node.dirty
            and node.cached_final is not None
            and node.cached_key == cache_key
        ):
            self.report.cache_hits += 1
            return self._clone_subtree(node.cached_final)
        final = self._compute(node, inherited, is_root)
        if self._keep_state:
            node.cached_final = final
            node.cached_key = cache_key
            node.dirty = False
            return self._clone_subtree(final)
        return final

    def _compute(self, node: BoatNode, inherited: np.ndarray, is_root: bool) -> Node:
        stats = effective_stats(node, inherited, self._schema)
        counts = np.asarray(stats.class_counts, dtype=np.int64)
        if node.is_frontier:
            return self._complete_frontier(node, inherited, counts)
        # Absolute leaf conditions — identical to the reference builder's.
        max_depth = self._config.max_depth
        if (
            int(counts.sum()) < self._config.min_samples_split
            or np.count_nonzero(counts) <= 1
            or (max_depth is not None and node.depth >= max_depth)
        ):
            return self._confirmed_leaf(node, counts)
        outcome = self._exact_best(node, stats, counts)
        if outcome is None:
            return self._rebuild_subtree(
                node, inherited, "categorical coarse subset refuted", is_root
            )
        final_split, threshold, is_leaf_decision = outcome
        failure = self._verify(node, stats, counts, threshold, is_leaf_decision)
        if failure is not None:
            return self._rebuild_subtree(node, inherited, failure, is_root)
        if is_leaf_decision:
            return self._confirmed_leaf(node, counts)
        self.report.confirmed_splits += 1
        final = self._leaf(node.depth, counts)
        left_in, right_in = self._partition_for_children(node, stats, final_split)
        left_node, right_node = node.children()
        final.make_internal(
            final_split,
            self._finalize(left_node, left_in),
            self._finalize(right_node, right_in),
        )
        return final

    # -- pieces ------------------------------------------------------------------

    def _cache_key(self, inherited: np.ndarray) -> bytes:
        digest = hashlib.blake2b(digest_size=16)
        digest.update(len(inherited).to_bytes(8, "little"))
        if len(inherited):
            digest.update(np.ascontiguousarray(inherited).tobytes())
        return digest.digest()

    def _leaf(self, depth: int, counts: np.ndarray) -> Node:
        return Node(next(self._ids), depth, counts)

    def _confirmed_leaf(self, node: BoatNode, counts: np.ndarray) -> Node:
        self.report.leaves += 1
        if not self._keep_state:
            # Static construction never revisits the subtree; free its
            # stores.  Incremental maintenance keeps them: later inserts
            # can turn the leaf back into a split.
            if node.left is not None:
                node.left.release()
            if node.right is not None:
                node.right.release()
        return self._leaf(node.depth, counts)

    def _complete_frontier(
        self, node: BoatNode, inherited: np.ndarray, counts: np.ndarray
    ) -> Node:
        # Certain-leaf fast path: pure, undersized or depth-capped families
        # become leaves without touching the (possibly spilled) store.
        max_depth = self._config.max_depth
        if (
            int(counts.sum()) < self._config.min_samples_split
            or np.count_nonzero(counts) <= 1
            or (max_depth is not None and node.depth >= max_depth)
        ):
            self.report.leaves += 1
            return self._leaf(node.depth, counts)
        self.report.frontier_completions += 1
        # A prefetched completion (built concurrently before this pass) is
        # valid only when nothing was inherited from ancestors — exactly
        # the eligibility rule of :func:`prefetch_frontier_subtrees`.
        if len(inherited) == 0 and node.node_id in self._prefetch:
            self.report.frontier_prefetch_hits += 1
            return self._graft(self._prefetch.pop(node.node_id), node.depth)
        family = collect_family(node, inherited, self._schema)
        sub = build_reference_tree(
            family, self._schema, self._method, config_at_depth(self._config, node.depth)
        )
        return self._graft(sub.root, node.depth)

    def _graft(self, root: Node, depth_offset: int) -> Node:
        """Renumber ids and shift depths of a separately built subtree."""
        for sub in _preorder(root):
            sub.node_id = next(self._ids)
            sub.depth += depth_offset
        return root

    def _clone_subtree(self, root: Node) -> Node:
        """Structure-copy a cached subtree with fresh node ids.

        Class-count arrays are shared (read-only by convention); Node
        objects are fresh so successive tree snapshots stay independent.
        """
        clone = Node(next(self._ids), root.depth, root.class_counts)
        if not root.is_leaf:
            clone.make_internal(
                root.split,
                self._clone_subtree(root.left),
                self._clone_subtree(root.right),
            )
        return clone

    def _rebuild_subtree(
        self, node: BoatNode, inherited: np.ndarray, reason: str, is_root: bool
    ) -> Node:
        self.report.rebuilds += 1
        self.report.rebuild_reasons.append(
            f"node {node.node_id} (depth {node.depth}): {reason}"
        )
        if self._keep_state and self._skeleton_rebuild is not None:
            # Rebuild the skeleton from the subtree's *stores* only;
            # ancestor-held tuples stay at their ancestors and keep being
            # re-routed non-destructively on every pass.  If this subtree
            # was itself produced by a rebuild in this very pass, force a
            # frontier node — its in-memory completion never re-verifies,
            # so rebuilding terminates even on pathological plateaus.
            force_frontier = node.node_id in self._fresh_nodes
            own_family = collect_family(node, self._schema.empty(0), self._schema)
            self.report.rebuilt_tuples += len(own_family) + len(inherited)
            node.release()
            fresh = self._skeleton_rebuild(own_family, node.depth, force_frontier)
            self._fresh_nodes.update(sub.node_id for sub in fresh.nodes())
            self._swap_skeleton(node, fresh, is_root)
            return self._finalize(fresh, inherited)
        family = collect_family(node, inherited, self._schema)
        self.report.rebuilt_tuples += len(family)
        node.release()
        rebuilt = self._rebuild(family, node.depth)
        return self._graft(rebuilt, 0)

    def _swap_skeleton(self, old: BoatNode, fresh: BoatNode, is_root: bool) -> None:
        parent = old.parent
        fresh.parent = parent
        if parent is None or is_root:
            self.new_root = fresh
            return
        if parent.left is old:
            parent.left = fresh
        elif parent.right is old:
            parent.right = fresh
        else:  # pragma: no cover - defensive
            raise RuntimeError("skeleton parent link broken")

    def _exact_best(
        self, node: BoatNode, stats: EffectiveStats, counts: np.ndarray
    ) -> tuple[NumericSplit | CategoricalSplit | None, float, bool] | None:
        """Exact best split permitted by the coarse criterion.

        Returns ``(split, comparison threshold, leaf?)``; ``None`` means
        the coarse criterion is already refuted (categorical subset
        mismatch) and the subtree must be rebuilt.  ``leaf?`` flags a
        zero-gain / no-candidate leaf decision, pending verification.
        """
        node_imp = self._impurity.node_impurity(counts)
        criterion = node.criterion
        if isinstance(criterion, CoarseNumeric):
            held = stats.held
            self.report.held_candidates += len(held)
            attr_name = self._schema[criterion.attribute_index].name
            profile = numeric_profile(
                held[attr_name],
                held[CLASS_COLUMN],
                self._schema.n_classes,
                self._impurity,
                self._config.min_samples_leaf,
                base_left=stats.below_counts,
                total_counts=counts,
                kernels=self._kernels,
            )
            found = profile.best()
            if found is None or not found[0] < node_imp:
                return (None, node_imp, True)
            return (NumericSplit(criterion.attribute_index, found[1]), found[0], False)
        found = best_categorical_split_from_counts(
            stats.cat_counts[criterion.attribute_index],
            self._impurity,
            self._config.min_samples_leaf,
            self._config.max_categorical_exhaustive,
            kernels=self._kernels,
        )
        if found is None or not found[0] < node_imp:
            return (None, node_imp, True)
        if found[1] != criterion.subset:
            # The exact best subset differs from the coarse subset: the
            # children's statistics were accumulated under the wrong
            # routing, so nothing below this node can be salvaged.
            return None
        return (CategoricalSplit(criterion.attribute_index, found[1]), found[0], False)

    def _verify(
        self,
        node: BoatNode,
        stats: EffectiveStats,
        counts: np.ndarray,
        threshold: float,
        is_leaf_decision: bool,
    ) -> str | None:
        """§3.4 failure detection.  Returns a reason string, or None if ok.

        ``threshold`` is i' (or the node impurity for a pending leaf
        decision).  A competing candidate *earlier* in the reference
        builder's tie-break order refutes the criterion already on exact
        equality; a later one only when strictly better.  A pending leaf
        is refuted by any strict improvement anywhere.
        """
        criterion = node.criterion
        coarse_index = criterion.attribute_index
        for index, attr in enumerate(self._schema.attributes):
            if attr.is_categorical:
                if index == coarse_index:
                    continue  # evaluated exactly in _exact_best
                found = best_categorical_split_from_counts(
                    stats.cat_counts[index],
                    self._impurity,
                    self._config.min_samples_leaf,
                    self._config.max_categorical_exhaustive,
                    kernels=self._kernels,
                )
                if found is None:
                    continue
                if self._beats(
                    found[0], index, coarse_index, threshold, is_leaf_decision
                ):
                    return (
                        f"categorical attribute {attr.name} reaches impurity "
                        f"{found[0]:.6g} vs threshold {threshold:.6g}"
                    )
                continue
            edges = node.bucket_edges.get(index)
            if edges is None:  # pragma: no cover - every numeric attr has edges
                continue
            bucket_counts = stats.bucket_counts[index]
            bounds = bucket_lower_bounds(bucket_counts, counts, self._impurity)
            point = point_bucket_mask(edges)
            if point.any():
                # A point bucket's single possible candidate is its upper
                # edge; its stamp point is exact, so evaluate it exactly
                # instead of corner-bounding.
                cum = np.cumsum(bucket_counts, axis=0)
                bounds = bounds.copy()
                bounds[point] = self._impurity.weighted(cum[point], counts)
            admissible = admissible_bucket_mask(
                bucket_counts, self._config.min_samples_leaf
            )
            if index == coarse_index and isinstance(criterion, CoarseNumeric):
                first, last = interval_bucket_range(
                    edges, criterion.low, criterion.high
                )
                below = admissible.copy()
                below[first:] = False
                above = admissible.copy()
                above[:last] = False
                if is_leaf_decision:
                    if np.any((below | above) & (bounds < threshold)):
                        return (
                            f"split attribute {attr.name}: leaf decision but a "
                            f"bucket bound < node impurity {threshold:.6g}"
                        )
                else:
                    # Below-interval values precede the chosen split value,
                    # so they win exact ties; above-interval values lose them.
                    if np.any(below & (bounds <= threshold)):
                        return (
                            f"split attribute {attr.name}: bucket below the "
                            f"confidence interval bounds <= {threshold:.6g}"
                        )
                    if np.any(above & (bounds < threshold)):
                        return (
                            f"split attribute {attr.name}: bucket above the "
                            f"confidence interval bounds < {threshold:.6g}"
                        )
                continue
            beaten = self._beats_mask(
                bounds, index, coarse_index, threshold, is_leaf_decision
            )
            if np.any(admissible & beaten):
                return (
                    f"numerical attribute {attr.name}: a bucket lower bound "
                    f"undercuts threshold {threshold:.6g}"
                )
        return None

    def _beats(
        self,
        value: float,
        index: int,
        coarse_index: int,
        threshold: float,
        is_leaf_decision: bool,
    ) -> bool:
        if is_leaf_decision:
            return value < threshold
        if index < coarse_index:
            return value <= threshold
        return value < threshold

    def _beats_mask(
        self,
        bounds: np.ndarray,
        index: int,
        coarse_index: int,
        threshold: float,
        is_leaf_decision: bool,
    ) -> np.ndarray:
        if is_leaf_decision or index > coarse_index:
            return bounds < threshold
        return bounds <= threshold

    def _partition_for_children(
        self,
        node: BoatNode,
        stats: EffectiveStats,
        final_split: NumericSplit | CategoricalSplit,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Inherited arrays for the two children under the final split."""
        if isinstance(final_split, CategoricalSplit):
            return stats.inherited_below, stats.inherited_above
        held = stats.held
        go_left = (
            held[self._schema[final_split.attribute_index].name]
            <= final_split.value
        )
        left = _concat(stats.inherited_below, held[go_left])
        right = _concat(stats.inherited_above, held[~go_left])
        return left, right


def _concat(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if len(a) == 0:
        return b
    if len(b) == 0:
        return a
    return np.concatenate([a, b])


def _preorder(root: Node) -> Iterator[Node]:
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        if not node.is_leaf:
            stack.append(node.right)
            stack.append(node.left)


def reference_rebuild(
    schema: Schema, method: ImpuritySplitSelection, config: SplitConfig
) -> RebuildFn:
    """The default static rebuild strategy: the in-memory reference builder."""

    def rebuild(family: np.ndarray, depth: int) -> Node:
        sub = build_reference_tree(
            family, schema, method, config_at_depth(config, depth)
        )
        for node in _preorder(sub.root):
            node.depth += depth
        return sub.root

    return rebuild


def prefetch_frontier_subtrees(
    root: BoatNode,
    schema: Schema,
    method: ImpuritySplitSelection,
    config: SplitConfig,
    pool: WorkerPool | None,
) -> dict[int, Node]:
    """Concurrently pre-build frontier completions the sequential pass may need.

    The prefetch is *optimistic*, like BOAT itself: a completion built from
    a frontier node's family store alone is the correct subtree only if the
    node inherits nothing from its ancestors at finalization time (held
    tuples are re-routed during the pass, and their destination depends on
    each exact split — unknowable in advance).  The finalizer therefore
    consumes an entry only when the inherited set turns out empty; misses
    and entries orphaned by a rebuild above them simply go unused.  Certain
    leaves (pure, under ``min_samples_split``, or at ``max_depth``) are
    skipped because the finalizer decides them without building anything.

    Returns a map ``node_id -> subtree root`` consumed by
    :class:`Finalizer`.  Prefetched subtrees are built by the exact
    in-memory completion code path, so a hit changes nothing about the
    output tree.  ``pool`` must carry the worker build context when its
    backend is ``"process"`` (see :mod:`repro.core.workers`).
    """
    if pool is None or not pool.is_parallel:
        return {}
    candidates: list[BoatNode] = []

    def walk(node: BoatNode) -> None:
        if node.is_frontier:
            counts = node.class_counts
            certain_leaf = (
                int(counts.sum()) < config.min_samples_split
                or np.count_nonzero(counts) <= 1
                or (config.max_depth is not None and node.depth >= config.max_depth)
            )
            if not certain_leaf:
                candidates.append(node)
            return
        if node.left is not None:
            walk(node.left)
        if node.right is not None:
            walk(node.right)

    walk(root)
    if not candidates:
        return {}
    empty = schema.empty(0)
    items = [(collect_family(node, empty, schema), node.depth) for node in candidates]
    if pool.backend == "process":
        roots = [tree_from_dict(d).root for d in pool.map(frontier_subtree_task, items)]
    else:
        def build(item: tuple[np.ndarray, int]) -> Node:
            family, depth = item
            return build_reference_tree(
                family, schema, method, config_at_depth(config, depth)
            ).root

        roots = pool.map(build, items)
    return {node.node_id: sub for node, sub in zip(candidates, roots)}


def finalize_tree(
    root: BoatNode,
    schema: Schema,
    method: ImpuritySplitSelection,
    config: SplitConfig,
    rebuild: RebuildFn | None = None,
    prefetch: dict[int, Node] | None = None,
) -> tuple[DecisionTree, FinalizeReport]:
    """Run one static finalization pass over a populated skeleton."""
    rebuild = rebuild or reference_rebuild(schema, method, config)
    finalizer = Finalizer(schema, method, config, rebuild, prefetch=prefetch)
    tree = finalizer.run(root)
    tree.validate()
    return tree, finalizer.report
