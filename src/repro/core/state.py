"""Per-node state of the BOAT skeleton tree.

A :class:`BoatNode` carries everything the cleanup scan accumulates at one
node (§3.3–3.5) and everything the incremental maintainer keeps alive
between updates (§4):

* exact class counts of the tuples that streamed through the node,
* per-categorical-attribute contingency matrices (exact categorical
  impurity evaluation and splitting-attribute verification),
* per-numerical-attribute discretization bucket counts (stamp points for
  the Lemma 3.1 check),
* for a numeric coarse criterion: exact class counts strictly below /
  above the confidence interval and the *held* tuples inside it,
* for a frontier node: the collected family.

Persistent statistics cover only tuples that physically streamed past the
node — tuples held at an ancestor are re-routed non-destructively at every
finalization pass (:func:`effective_stats`), which keeps repeated
incremental updates exactly correct when final split points drift inside
their confidence intervals.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..config import BoatConfig
from ..exceptions import StorageError
from ..kernels import DEFAULT_KERNELS, KernelBackend
from ..storage import CLASS_COLUMN, IOStats, Schema, TupleStore
from ..splits.categorical import category_class_counts
from .coarse import CoarseCategorical, CoarseCriterion, CoarseNumeric
from .discretize import bucket_index


def durable_store_path(
    durable_dir: str | None, node_id: int, kind: str
) -> str | None:
    """Deterministic durable spill path for one node's store.

    Checkpointed builds (``durable_dir`` set) name every node store by
    its skeleton node id, so a resumed process can re-attach exactly the
    files its predecessor wrote; uncheckpointed builds keep anonymous
    tempfiles (``None``).
    """
    if durable_dir is None:
        return None
    return os.path.join(durable_dir, f"node{node_id:06d}-{kind}.spill")


class BoatNode:
    """One node of the BOAT skeleton with its accumulated statistics."""

    __slots__ = (
        "node_id",
        "depth",
        "criterion",
        "left",
        "right",
        "parent",
        "class_counts",
        "below_counts",
        "above_counts",
        "held",
        "family_store",
        "cat_counts",
        "bucket_edges",
        "bucket_counts",
        "estimated_family",
        "dirty",
        "cached_final",
        "cached_key",
        "deepen_watermark",
    )

    def __init__(
        self,
        node_id: int,
        depth: int,
        criterion: CoarseCriterion | None,
        schema: Schema,
        bucket_edges: dict[int, np.ndarray],
        config: BoatConfig,
        spill_dir: str | None = None,
        io_stats: IOStats | None = None,
        estimated_family: int = 0,
        durable_dir: str | None = None,
    ):
        k = schema.n_classes
        self.node_id = node_id
        self.depth = depth
        self.criterion = criterion
        self.left: BoatNode | None = None
        self.right: BoatNode | None = None
        self.parent: BoatNode | None = None
        #: Finalization cache (incremental mode): the last final subtree
        #: computed for this skeleton node and the digest of the inherited
        #: tuples it was computed under.
        self.cached_final = None
        self.cached_key: bytes | None = None
        #: Frontier-deepening backoff: skip re-attempting a mini-BOAT
        #: conversion until the family outgrows this size.
        self.deepen_watermark = 0
        self.class_counts = np.zeros(k, dtype=np.int64)
        self.estimated_family = estimated_family
        self.dirty = True
        # Frontier nodes keep their whole family, so per-attribute counts
        # would be redundant work; internal nodes need them for the checks.
        if criterion is None:
            self.cat_counts = {}
        else:
            self.cat_counts = {
                i: np.zeros((a.domain_size, k), dtype=np.int64)
                for i, a in enumerate(schema.attributes)
                if a.is_categorical
            }
        self.bucket_edges = bucket_edges
        self.bucket_counts = {
            i: np.zeros((len(edges) + 1, k), dtype=np.int64)
            for i, edges in bucket_edges.items()
        }
        if isinstance(criterion, CoarseNumeric):
            self.below_counts = np.zeros(k, dtype=np.int64)
            self.above_counts = np.zeros(k, dtype=np.int64)
            self.held = TupleStore(
                schema,
                config.spill_threshold_rows,
                spill_dir,
                io_stats,
                durable_path=durable_store_path(durable_dir, node_id, "held"),
            )
        else:
            self.below_counts = None
            self.above_counts = None
            self.held = None
        if criterion is None:
            self.family_store = TupleStore(
                schema,
                config.spill_threshold_rows,
                spill_dir,
                io_stats,
                durable_path=durable_store_path(durable_dir, node_id, "family"),
            )
        else:
            self.family_store = None

    @property
    def is_frontier(self) -> bool:
        return self.criterion is None

    @property
    def n_tuples(self) -> int:
        return int(self.class_counts.sum())

    def children(self) -> tuple["BoatNode", "BoatNode"]:
        if self.left is None or self.right is None:
            raise StorageError(f"BOAT node {self.node_id} has no children")
        return self.left, self.right

    def nodes(self) -> Iterator["BoatNode"]:
        """This node and all descendants, preorder."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            if node.right is not None:
                stack.append(node.right)
            if node.left is not None:
                stack.append(node.left)

    def release(self) -> None:
        """Drop every store in this subtree (subtree discard / teardown)."""
        for node in self.nodes():
            if node.held is not None:
                node.held.clear()
            if node.family_store is not None:
                node.family_store.clear()

    def __repr__(self) -> str:
        kind = "frontier" if self.is_frontier else str(self.criterion)
        return f"BoatNode(id={self.node_id}, depth={self.depth}, {kind}, n={self.n_tuples})"


# ---------------------------------------------------------------------------
# Streaming accumulation (the cleanup scan, and incremental insert/delete)
# ---------------------------------------------------------------------------


def stream_batch(
    node: BoatNode,
    batch: np.ndarray,
    schema: Schema,
    sign: int = 1,
    kernels: KernelBackend = DEFAULT_KERNELS,
) -> None:
    """Stream a batch down the skeleton, updating statistics in place.

    ``sign=+1`` inserts (the cleanup scan and incremental insertion);
    ``sign=-1`` deletes (incremental deletion) — counts are decremented
    and matching tuples are removed from held/family stores.
    """
    if batch.size == 0:
        return
    node.dirty = True
    _accumulate_counts(node, batch, schema, sign, kernels)
    if node.criterion is None:
        if sign > 0:
            node.family_store.append(batch)
        else:
            _remove_from_store(node.family_store, batch)
        return
    if isinstance(node.criterion, CoarseCategorical):
        go_left = node.criterion.go_left(batch, schema, kernels)
        left, right = node.children()
        stream_batch(left, batch[go_left], schema, sign, kernels)
        stream_batch(right, batch[~go_left], schema, sign, kernels)
        return
    below, held, above = node.criterion.masks(batch, schema, kernels)
    labels = batch[CLASS_COLUMN]
    k = schema.n_classes
    node.below_counts += sign * kernels.class_histogram(labels[below], k)
    node.above_counts += sign * kernels.class_histogram(labels[above], k)
    held_batch = batch[held]
    if held_batch.size:
        if sign > 0:
            node.held.append(held_batch)
        else:
            _remove_from_store(node.held, held_batch)
    left, right = node.children()
    stream_batch(left, batch[below], schema, sign, kernels)
    stream_batch(right, batch[above], schema, sign, kernels)


def _count_deltas(
    node: BoatNode,
    batch: np.ndarray,
    schema: Schema,
    kernels: KernelBackend = DEFAULT_KERNELS,
) -> tuple[np.ndarray, dict[int, np.ndarray], dict[int, np.ndarray]]:
    """Per-node count increments for a batch, computed without mutation."""
    labels = batch[CLASS_COLUMN]
    k = schema.n_classes
    class_delta = kernels.class_histogram(labels, k)
    cat_deltas = {
        index: kernels.category_class_counts(
            batch[schema[index].name], labels, matrix.shape[0], k
        )
        for index, matrix in node.cat_counts.items()
    }
    bucket_deltas = {}
    for index, counts in node.bucket_counts.items():
        edges = node.bucket_edges[index]
        bucket_deltas[index] = kernels.bucket_class_counts(
            edges, batch[schema[index].name], labels, k
        )
    return class_delta, cat_deltas, bucket_deltas


def _accumulate_counts(
    node: BoatNode,
    batch: np.ndarray,
    schema: Schema,
    sign: int,
    kernels: KernelBackend = DEFAULT_KERNELS,
) -> None:
    class_delta, cat_deltas, bucket_deltas = _count_deltas(node, batch, schema, kernels)
    node.class_counts += sign * class_delta
    for index, delta in cat_deltas.items():
        node.cat_counts[index] += sign * delta
    for index, delta in bucket_deltas.items():
        node.bucket_counts[index] += sign * delta


@dataclass
class NodeDelta:
    """One node's pending statistics update for one scanned batch.

    Produced by :func:`compute_batch_delta` (thread-safe, no mutation)
    and consumed by :func:`apply_batch_delta` (parent-only mutation).
    The row arrays are views into the scanned batch.
    """

    node: BoatNode
    class_counts: np.ndarray
    cat_counts: dict[int, np.ndarray]
    bucket_counts: dict[int, np.ndarray]
    below_counts: np.ndarray | None = None
    above_counts: np.ndarray | None = None
    held_rows: np.ndarray | None = None
    family_rows: np.ndarray | None = None


def compute_batch_delta(
    root: BoatNode,
    batch: np.ndarray,
    schema: Schema,
    kernels: KernelBackend = DEFAULT_KERNELS,
) -> list[NodeDelta]:
    """Route a batch down the skeleton, collecting deltas instead of mutating.

    This is the read-only half of :func:`stream_batch` (insertion only):
    it touches only immutable node state (criteria, bucket edges), so any
    number of batches can be processed concurrently.  Deltas come back in
    the same preorder the serial scan mutates in, so applying them batch
    by batch reproduces the serial scan bit for bit — including the row
    order of held and family stores.
    """
    deltas: list[NodeDelta] = []
    _collect_deltas(root, batch, schema, deltas, kernels)
    return deltas


def _collect_deltas(
    node: BoatNode,
    batch: np.ndarray,
    schema: Schema,
    out: list[NodeDelta],
    kernels: KernelBackend = DEFAULT_KERNELS,
) -> None:
    if batch.size == 0:
        return
    class_delta, cat_deltas, bucket_deltas = _count_deltas(node, batch, schema, kernels)
    delta = NodeDelta(node, class_delta, cat_deltas, bucket_deltas)
    out.append(delta)
    if node.criterion is None:
        delta.family_rows = batch
        return
    if isinstance(node.criterion, CoarseCategorical):
        go_left = node.criterion.go_left(batch, schema, kernels)
        left, right = node.children()
        _collect_deltas(left, batch[go_left], schema, out, kernels)
        _collect_deltas(right, batch[~go_left], schema, out, kernels)
        return
    below, held, above = node.criterion.masks(batch, schema, kernels)
    labels = batch[CLASS_COLUMN]
    k = schema.n_classes
    delta.below_counts = kernels.class_histogram(labels[below], k)
    delta.above_counts = kernels.class_histogram(labels[above], k)
    held_batch = batch[held]
    if held_batch.size:
        delta.held_rows = held_batch
    left, right = node.children()
    _collect_deltas(left, batch[below], schema, out, kernels)
    _collect_deltas(right, batch[above], schema, out, kernels)


def apply_batch_delta(deltas: list[NodeDelta]) -> None:
    """Apply one batch's deltas to the skeleton (insertion only).

    Must run in the parent thread; callers preserve scan order by
    applying whole batches in the order they were scanned.
    """
    for delta in deltas:
        node = delta.node
        node.dirty = True
        node.class_counts += delta.class_counts
        for index, matrix in delta.cat_counts.items():
            node.cat_counts[index] += matrix
        for index, matrix in delta.bucket_counts.items():
            node.bucket_counts[index] += matrix
        if delta.below_counts is not None:
            node.below_counts += delta.below_counts
            node.above_counts += delta.above_counts
        if delta.held_rows is not None:
            node.held.append(delta.held_rows)
        if delta.family_rows is not None:
            node.family_store.append(delta.family_rows)


def _remove_from_store(store: TupleStore, records: np.ndarray) -> None:
    remaining = multiset_remove(store.read_all(), records)
    store.replace(remaining)


def multiset_remove(haystack: np.ndarray, needles: np.ndarray) -> np.ndarray:
    """Remove one occurrence per needle from a record array (bitwise match).

    Raises :class:`StorageError` if any needle has no remaining match —
    deleting a tuple that was never inserted is a caller bug the paper's
    model does not allow.
    """
    if len(needles) == 0:
        return haystack
    size = haystack.dtype.itemsize
    raw = np.ascontiguousarray(haystack).tobytes()
    pending: dict[bytes, int] = {}
    for i in range(len(needles)):
        key = np.ascontiguousarray(needles[i : i + 1]).tobytes()
        pending[key] = pending.get(key, 0) + 1
    keep = np.ones(len(haystack), dtype=bool)
    removed = 0
    for i in range(len(haystack)):
        key = raw[i * size : (i + 1) * size]
        count = pending.get(key, 0)
        if count:
            pending[key] = count - 1
            keep[i] = False
            removed += 1
            if removed == len(needles):
                break
    if removed != len(needles):
        raise StorageError(
            f"{len(needles) - removed} deleted tuple(s) not present in store"
        )
    return haystack[keep]


# ---------------------------------------------------------------------------
# Effective statistics (finalization pass)
# ---------------------------------------------------------------------------


@dataclass
class EffectiveStats:
    """The node's statistics with ancestor-held tuples routed back in.

    All arrays may alias the node's persistent state when ``inherited`` is
    empty — treat them as read-only.

    Attributes:
        class_counts: family class counts.
        cat_counts: per-categorical-attribute contingency matrices.
        bucket_counts: per-numerical-attribute bucket class counts.
        below_counts / above_counts: numeric criterion only.
        held: every family tuple inside the confidence interval (own held
            store plus in-interval inherited tuples); numeric criterion
            only, else an empty array.
        inherited_below / inherited_above: inherited tuples continuing to
            the left / right child (numeric criterion), or the subset
            partition of the inherited tuples (categorical criterion).
    """

    class_counts: np.ndarray
    cat_counts: dict[int, np.ndarray]
    bucket_counts: dict[int, np.ndarray]
    below_counts: np.ndarray | None
    above_counts: np.ndarray | None
    held: np.ndarray
    inherited_below: np.ndarray
    inherited_above: np.ndarray


def effective_stats(
    node: BoatNode, inherited: np.ndarray, schema: Schema
) -> EffectiveStats:
    """Combine persistent statistics with re-routed ancestor-held tuples."""
    k = schema.n_classes
    empty = inherited[:0]
    if node.criterion is None:
        below = empty
        above = empty
        held_own = None
    elif isinstance(node.criterion, CoarseCategorical):
        go_left = node.criterion.go_left(inherited, schema)
        below = inherited[go_left]
        above = inherited[~go_left]
        held_own = None
    else:
        below_mask, held_mask, above_mask = node.criterion.masks(inherited, schema)
        below = inherited[below_mask]
        above = inherited[above_mask]
        held_own = inherited[held_mask]

    if len(inherited) == 0:
        class_counts = node.class_counts
        cat_counts = node.cat_counts
        bucket_counts = node.bucket_counts
        below_counts = node.below_counts
        above_counts = node.above_counts
    else:
        labels = inherited[CLASS_COLUMN]
        class_counts = node.class_counts + np.bincount(labels, minlength=k)
        cat_counts = {}
        for index, matrix in node.cat_counts.items():
            cat_counts[index] = matrix + category_class_counts(
                inherited[schema[index].name], labels, matrix.shape[0], k
            )
        bucket_counts = {}
        for index, counts in node.bucket_counts.items():
            edges = node.bucket_edges[index]
            buckets = bucket_index(edges, inherited[schema[index].name])
            flat = np.bincount(
                buckets * k + labels, minlength=counts.size
            ).reshape(counts.shape)
            bucket_counts[index] = counts + flat
        below_counts = node.below_counts
        above_counts = node.above_counts
        if isinstance(node.criterion, CoarseNumeric):
            below_counts = node.below_counts + np.bincount(
                below[CLASS_COLUMN], minlength=k
            )
            above_counts = node.above_counts + np.bincount(
                above[CLASS_COLUMN], minlength=k
            )

    if isinstance(node.criterion, CoarseNumeric):
        own = node.held.read_all()
        if held_own is not None and len(held_own):
            held = np.concatenate([own, held_own]) if len(own) else held_own
        else:
            held = own
    else:
        held = empty

    return EffectiveStats(
        class_counts=class_counts,
        cat_counts=cat_counts,
        bucket_counts=bucket_counts,
        below_counts=below_counts,
        above_counts=above_counts,
        held=held,
        inherited_below=below,
        inherited_above=above,
    )


def collect_family(node: BoatNode, inherited: np.ndarray, schema: Schema) -> np.ndarray:
    """The node's complete family: every store in the subtree + inherited.

    Every tuple that streamed past a node ends up in exactly one store of
    its subtree (a held store, or a frontier family store), so the family
    is recoverable without rescanning the training database — the property
    that makes subtree rebuilds local.
    """
    parts: list[np.ndarray] = []
    if len(inherited):
        parts.append(inherited)
    for sub in node.nodes():
        if sub.held is not None and len(sub.held):
            parts.append(sub.held.read_all())
        if sub.family_store is not None and len(sub.family_store):
            parts.append(sub.family_store.read_all())
    if not parts:
        return schema.empty(0)
    return parts[0] if len(parts) == 1 else np.concatenate(parts)
