"""BOAT core: sampling phase, cleanup scan, finalization, incremental maintenance."""

from .boat import BoatReport, BoatResult, boat_build
from .bootstrap import SamplingReport, SamplingResult, sampling_phase
from .bounds import admissible_bucket_mask, bucket_lower_bound, bucket_lower_bounds
from .coarse import CoarseCategorical, CoarseCriterion, CoarseNumeric
from .discretize import (
    bucket_index,
    build_discretization,
    interval_bucket_range,
    interval_forced_edges,
)
from .finalize import (
    FinalizeReport,
    Finalizer,
    config_at_depth,
    finalize_tree,
    reference_rebuild,
)
from .crossval import CrossValidationResult, boat_cross_validate
from .incremental import IncrementalBoat, UpdateReport
from .quest_boat import QuestBoatReport, QuestBoatResult, quest_boat_build
from .state import (
    BoatNode,
    EffectiveStats,
    collect_family,
    effective_stats,
    multiset_remove,
    stream_batch,
)

__all__ = [
    "BoatNode",
    "BoatReport",
    "BoatResult",
    "CoarseCategorical",
    "CoarseCriterion",
    "CoarseNumeric",
    "CrossValidationResult",
    "EffectiveStats",
    "FinalizeReport",
    "Finalizer",
    "IncrementalBoat",
    "QuestBoatReport",
    "QuestBoatResult",
    "UpdateReport",
    "quest_boat_build",
    "SamplingReport",
    "SamplingResult",
    "admissible_bucket_mask",
    "boat_build",
    "boat_cross_validate",
    "bucket_index",
    "bucket_lower_bound",
    "bucket_lower_bounds",
    "build_discretization",
    "collect_family",
    "config_at_depth",
    "effective_stats",
    "finalize_tree",
    "interval_bucket_range",
    "interval_forced_edges",
    "multiset_remove",
    "reference_rebuild",
    "sampling_phase",
    "stream_batch",
]
