"""BOAT core: sampling phase, cleanup scan, finalization, incremental maintenance."""

from .boat import BoatReport, BoatResult, boat_build, make_build_pool
from .bootstrap import (
    SamplingReport,
    SamplingResult,
    build_bootstrap_trees,
    sampling_phase,
)
from .bounds import admissible_bucket_mask, bucket_lower_bound, bucket_lower_bounds
from .cleanup import cleanup_scan, shared_cleanup_scan
from .coarse import CoarseCategorical, CoarseCriterion, CoarseNumeric
from .discretize import (
    bucket_index,
    build_discretization,
    interval_bucket_range,
    interval_forced_edges,
)
from .finalize import (
    FinalizeReport,
    Finalizer,
    config_at_depth,
    finalize_tree,
    prefetch_frontier_subtrees,
    reference_rebuild,
)
from .crossval import CrossValidationResult, boat_cross_validate
from .incremental import IncrementalBoat, UpdateReport
from .quest_boat import QuestBoatReport, QuestBoatResult, quest_boat_build
from .sql_pushdown import routing_expression, sql_pushdown_scan
from .state import (
    BoatNode,
    EffectiveStats,
    NodeDelta,
    apply_batch_delta,
    collect_family,
    compute_batch_delta,
    effective_stats,
    multiset_remove,
    stream_batch,
)

__all__ = [
    "BoatNode",
    "BoatReport",
    "BoatResult",
    "CoarseCategorical",
    "CoarseCriterion",
    "CoarseNumeric",
    "CrossValidationResult",
    "EffectiveStats",
    "FinalizeReport",
    "Finalizer",
    "IncrementalBoat",
    "QuestBoatReport",
    "QuestBoatResult",
    "UpdateReport",
    "quest_boat_build",
    "SamplingReport",
    "SamplingResult",
    "NodeDelta",
    "admissible_bucket_mask",
    "apply_batch_delta",
    "boat_build",
    "boat_cross_validate",
    "bucket_index",
    "bucket_lower_bound",
    "bucket_lower_bounds",
    "build_bootstrap_trees",
    "build_discretization",
    "cleanup_scan",
    "collect_family",
    "compute_batch_delta",
    "config_at_depth",
    "effective_stats",
    "finalize_tree",
    "interval_bucket_range",
    "interval_forced_edges",
    "make_build_pool",
    "multiset_remove",
    "prefetch_frontier_subtrees",
    "reference_rebuild",
    "routing_expression",
    "sampling_phase",
    "shared_cleanup_scan",
    "sql_pushdown_scan",
    "stream_batch",
]
