"""Task functions executed inside worker processes (or threads).

Process workers cannot share the parent's heap, so everything a task
needs is either shipped once per worker through the pool initializer
(:func:`init_build_context` — the in-memory sample, schema, method and
split configuration) or carried in the task's own picklable arguments.
Trees travel back as the plain dicts of :mod:`repro.tree.serialize`,
whose ``float.hex`` encoding preserves split points bit for bit.

The same functions run unchanged under the thread and serial backends:
there the initializer runs once in the parent and the "transport"
serialization is a cheap identity-preserving round trip, keeping every
backend on one code path (and therefore bit-identical).
"""

from __future__ import annotations

import numpy as np

from ..config import SplitConfig, config_at_depth
from ..splits.methods import ImpuritySplitSelection
from ..storage import Schema, bootstrap_resample
from ..tree import build_reference_tree, tree_to_dict

#: Per-worker build context, set by :func:`init_build_context`.
_CONTEXT: dict = {}


def init_build_context(
    sample: np.ndarray,
    schema: Schema,
    method: ImpuritySplitSelection,
    split_config: SplitConfig,
    subsample: int,
) -> None:
    """Pool initializer: stash the shared build state in this worker."""
    _CONTEXT["sample"] = sample
    _CONTEXT["schema"] = schema
    _CONTEXT["method"] = method
    _CONTEXT["split_config"] = split_config
    _CONTEXT["subsample"] = subsample


def bootstrap_trees_task(seed_children: list[np.random.SeedSequence]) -> list[dict]:
    """Grow one bootstrap tree per seed child; return serialized trees.

    Each repetition gets its own generator seeded from a deterministically
    spawned :class:`~numpy.random.SeedSequence` child, so the resample —
    and therefore the tree — depends only on the child, never on which
    worker ran it or in what order.
    """
    sample = _CONTEXT["sample"]
    subsample = _CONTEXT["subsample"]
    out = []
    for child in seed_children:
        rng = np.random.default_rng(child)
        resample = bootstrap_resample(sample, subsample, rng)
        tree = build_reference_tree(
            resample, _CONTEXT["schema"], _CONTEXT["method"], _CONTEXT["split_config"]
        )
        out.append(tree_to_dict(tree))
    return out


def frontier_subtree_task(item: tuple[np.ndarray, int]) -> dict:
    """Finish one frontier family in memory; return the serialized subtree.

    ``item`` is ``(family, depth)`` — the depth positions the subtree's
    remaining ``max_depth`` budget exactly as an inline completion would.
    """
    family, depth = item
    tree = build_reference_tree(
        family,
        _CONTEXT["schema"],
        _CONTEXT["method"],
        config_at_depth(_CONTEXT["split_config"], depth),
    )
    return tree_to_dict(tree)
