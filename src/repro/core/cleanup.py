"""The cleanup scan (§3.3): serial streaming or parallel batch routing.

The scan is a pure accumulation: every table batch is routed down the
read-only skeleton and per-node statistics are incremented.  Increments
commute, but held/family store *row order* must match the serial scan for
byte-identical spill files — so the parallel path computes per-batch
:class:`~repro.core.state.NodeDelta` lists on worker threads (the numpy
routing kernels release the GIL) and applies them in the parent in scan
order.  The result is bit-identical to the serial scan at any worker
count.

Worker threads are used even when the configured backend is ``process``:
the skeleton's statistics live in the parent's heap, and shipping them
across process boundaries would cost more than the routing it saves.

For a :class:`~repro.storage.DiskTable` the batches themselves are read
inside the workers (``read_slice`` opens a private file handle per call),
each charging a private :class:`~repro.storage.IOStats` that is merged
into the experiment's shared instance in deterministic batch order.

Shared routing kernel: the *level-wise* cleanup scans (RainForest and
QUEST, which route finished batches down a frozen partial
:class:`~repro.tree.DecisionTree`) go through the serving layer's
compiled array kernel — ``tree.compile()`` /
:class:`repro.serve.CompiledPredictor` — so production inference and
the training scans exercise one routing implementation.  BOAT's own
cleanup scan below keeps its delta path: it routes down the mutable
*skeleton* (confidence intervals, held stores), which is per-node state
the read-only compiled form deliberately does not carry.

Recovery hooks: a resumed build passes ``start_row`` (the checkpointed
scan offset — rows before it were already accumulated by the crashed
process) and a checkpointed build passes ``progress`` (called with the
absolute row offset after each batch is applied, in scan order, from the
driving thread only — which is what makes checkpoint writes safe at any
worker count).  Both default to the plain full scan.

Tracing: :func:`cleanup_scan` opens its own ``cleanup`` span (so every
caller — the static driver, the incremental rebuild — gets the same
attribution) and, on the worker-read path, one detached child span per
worker thread recording that worker's private I/O.  Worker spans are a
*breakdown* of the parent's counters, not additive to them: the private
counters are merged into the shared instance the parent span diffs.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable, Iterator

import numpy as np

from ..config import DEFAULT_BATCH_ROWS
from ..kernels import DEFAULT_KERNELS, KernelBackend
from ..observability import NULL_TRACER, NullTracer, Tracer
from ..parallel import WorkerPool
from ..storage import DiskTable, IOStats, Schema, Table, bounded_scan
from .state import BoatNode, apply_batch_delta, compute_batch_delta, stream_batch

#: Progress callback: absolute rows scanned so far (start_row included).
ProgressFn = Callable[[int], None]


def scan_from(
    table: Table, batch_rows: int, start_row: int, stop_row: int | None = None
) -> Iterator[np.ndarray]:
    """Scan ``table`` rows ``[start_row, stop_row)``, as cheaply as it allows.

    Thin alias for :func:`repro.storage.bounded_scan`, kept because the
    recovery and shard layers import the bounded scan from here.
    """
    yield from bounded_scan(table, batch_rows, start_row, stop_row)


def _sql_source(table: Table):
    """Unwrap retry/decorator layers down to a ``SqlTable``, if any."""
    from ..storage.sql import SqlTable

    current: object = table
    while not isinstance(current, SqlTable):
        current = getattr(current, "inner", None)
        if current is None:
            return None
    return current


def cleanup_scan(
    root: BoatNode,
    table: Table,
    schema: Schema,
    batch_rows: int = DEFAULT_BATCH_ROWS,
    pool: WorkerPool | None = None,
    tracer: Tracer | NullTracer = NULL_TRACER,
    start_row: int = 0,
    progress: ProgressFn | None = None,
    kernels: KernelBackend = DEFAULT_KERNELS,
    stop_row: int | None = None,
    sql_pushdown: bool = False,
) -> None:
    """Stream the table down the skeleton, in parallel when possible.

    ``stop_row`` (exclusive, ``None`` = table end) bounds the scan to a
    row interval — the unit granularity of the elastic sharded build
    (``repro.shard.elastic``), where one shard may execute only the
    uncovered tail of its range after a checkpoint/reshard.

    ``sql_pushdown`` asks for the in-database cleanup: when the table (or
    the innermost layer of a wrapper chain) is a
    :class:`~repro.storage.sql.SqlTable` and the scan covers the whole
    table, the per-node statistics are computed as grouped aggregation
    queries and only held/family rows are exported (see docs/SQL.md).
    Any other table, or a sub-range scan, falls back to the normal path —
    the output is byte-identical either way.
    """
    with tracer.span("cleanup", batch_rows=batch_rows) as span:
        if start_row:
            span.set(resumed_from_row=start_row)
        if stop_row is not None:
            span.set(stop_row=stop_row)
        if sql_pushdown and start_row == 0 and stop_row is None:
            source = _sql_source(table)
            if source is not None:
                from .sql_pushdown import sql_pushdown_scan

                span.set(workers=1, sql_pushdown=True)
                sql_pushdown_scan(
                    root, source, schema, batch_rows, progress=progress
                )
                return
        if pool is None or not pool.is_parallel:
            span.set(workers=1)
            rows_done = start_row
            for batch in scan_from(table, batch_rows, start_row, stop_row):
                stream_batch(root, batch, schema, sign=1, kernels=kernels)
                rows_done += len(batch)
                if progress is not None:
                    progress(rows_done)
            return
        span.set(workers=pool.n_workers)
        if pool.backend == "thread":
            _parallel_scan(
                root,
                table,
                schema,
                batch_rows,
                pool,
                tracer,
                start_row,
                progress,
                kernels,
                stop_row,
            )
        else:
            with WorkerPool(pool.n_workers, "thread", tracer=tracer) as thread_pool:
                _parallel_scan(
                    root,
                    table,
                    schema,
                    batch_rows,
                    thread_pool,
                    tracer,
                    start_row,
                    progress,
                    kernels,
                    stop_row,
                )


def _parallel_scan(
    root: BoatNode,
    table: Table,
    schema: Schema,
    batch_rows: int,
    pool: WorkerPool,
    tracer: Tracer | NullTracer,
    start_row: int = 0,
    progress: ProgressFn | None = None,
    kernels: KernelBackend = DEFAULT_KERNELS,
    stop_row: int | None = None,
) -> None:
    io = table.io_stats
    if isinstance(table, DiskTable):
        n = len(table) if stop_row is None else min(stop_row, len(table))
        ranges = [
            (start, min(start + batch_rows, n))
            for start in range(start_row, n, batch_rows)
        ]

        def scan_range(bounds: tuple[int, int]) -> tuple[list, IOStats, str]:
            worker_io = IOStats()
            batch = table.read_slice(bounds[0], bounds[1], io_stats=worker_io)
            deltas = compute_batch_delta(root, batch, schema, kernels)
            return deltas, worker_io, threading.current_thread().name

        # One detached span per worker thread, numbered in first-result
        # order (batch results arrive in scan order, so numbering is
        # deterministic for a given schedule; counters are deterministic
        # regardless because each batch is charged exactly once).
        worker_spans: dict[str, object] = {}
        for (deltas, worker_io, worker_name), bounds in zip(
            pool.imap(scan_range, ranges), ranges
        ):
            apply_batch_delta(deltas)
            if io is not None:
                io.merge(worker_io)
            if tracer.enabled:
                span = worker_spans.get(worker_name)
                if span is None:
                    span = tracer.worker_span(f"worker-{len(worker_spans)}")
                    worker_spans[worker_name] = span
                span.add_io(worker_io)
                span.bump("batches")
            if progress is not None:
                progress(bounds[1])
        for span in worker_spans.values():
            tracer.attach(span)
        if io is not None and start_row == 0 and n == len(table):
            io.record_full_scan()
        return

    # Generic tables (e.g. MemoryTable): the parent iterates the scan —
    # which keeps the table's own charging semantics — and workers route.
    def route(batch) -> tuple[list, int]:
        return compute_batch_delta(root, batch, schema, kernels), len(batch)

    rows_done = start_row
    for deltas, n_rows in pool.imap(
        route, scan_from(table, batch_rows, start_row, stop_row)
    ):
        apply_batch_delta(deltas)
        rows_done += n_rows
        if progress is not None:
            progress(rows_done)


#: One consumer of a shared cleanup scan: called with every source batch
#: and its absolute row offset, in scan order.
SinkFn = Callable[[np.ndarray, int], None]


def shared_cleanup_scan(
    table: Table,
    sinks: list[SinkFn],
    batch_rows: int = DEFAULT_BATCH_ROWS,
    pool: WorkerPool | None = None,
    tracer: Tracer | NullTracer = NULL_TRACER,
    labels: list[str] | None = None,
) -> None:
    """One physical scan feeding many skeletons (crossval folds, forest members).

    Every batch of ``table`` is handed to every sink as ``sink(batch,
    offset)``; each sink routes it into its own skeleton (filtering,
    fold-masking, or resample-expanding first as it sees fit).  The table
    is read exactly once regardless of ``len(sinks)`` — this is the scan
    sharing that keeps k-fold cross-validation and M-member bagged
    ensembles inside BOAT's global two-scan budget.

    Ordering guarantee: each sink sees the batches in scan order, one at a
    time — with a pool, one thread task per sink per batch with a barrier
    between batches.  Sinks touch disjoint skeletons, so tasks never share
    mutable state, and the per-sink stream order (hence every per-member
    spill file and float accumulation) is identical at any worker count.

    Tracing: one ``cleanup`` span for the whole shared scan with one
    detached child span per sink (named by ``labels``, default
    ``member-<i>``) counting the batches that sink consumed.
    """
    with tracer.span(
        "cleanup", batch_rows=batch_rows, shared_sinks=len(sinks)
    ) as span:
        names = labels or [f"member-{i}" for i in range(len(sinks))]
        child_spans = (
            [tracer.worker_span(name) for name in names] if tracer.enabled else None
        )

        def bump_children() -> None:
            if child_spans is not None:
                for child in child_spans:
                    child.bump("batches")

        def drain_serial() -> None:
            offset = 0
            for batch in table.scan(batch_rows):
                for sink in sinks:
                    sink(batch, offset)
                bump_children()
                offset += len(batch)

        def drain(thread_pool: WorkerPool) -> None:
            # Double-buffered scan: a reader thread keeps the next batch
            # in flight while the sinks stream the current one, so the
            # table read (the expensive part on a sequential device)
            # overlaps member compute.  Batch order, per-batch barrier,
            # and per-sink stream order are untouched.
            batches: queue.Queue = queue.Queue(maxsize=2)

            def read_ahead() -> None:
                try:
                    offset = 0
                    for batch in table.scan(batch_rows):
                        batches.put((batch, offset))
                        offset += len(batch)
                    batches.put(None)
                except BaseException as exc:
                    batches.put(exc)

            reader = threading.Thread(
                target=read_ahead, name="shared-scan-reader", daemon=True
            )
            reader.start()
            try:
                while True:
                    item = batches.get()
                    if item is None:
                        break
                    if isinstance(item, BaseException):
                        raise item
                    batch, offset = item

                    def route_one(i: int, batch=batch, offset=offset) -> int:
                        sinks[i](batch, offset)
                        return i

                    for _ in thread_pool.map(route_one, range(len(sinks))):
                        pass
                    bump_children()
            finally:
                # If routing raised mid-scan the reader may be blocked on
                # a full queue; drain it until the thread exits.
                while reader.is_alive():
                    try:
                        batches.get_nowait()
                    except queue.Empty:
                        pass
                    reader.join(timeout=0.01)

        if pool is None or not pool.is_parallel or len(sinks) == 1:
            span.set(workers=1)
            drain_serial()
        elif pool.backend == "thread":
            span.set(workers=pool.n_workers)
            drain(pool)
        else:
            # Skeleton statistics live in the parent's heap; route on
            # threads even when the build pool is process-backed (the same
            # reasoning as cleanup_scan above).
            span.set(workers=pool.n_workers)
            with WorkerPool(pool.n_workers, "thread", tracer=tracer) as thread_pool:
                drain(thread_pool)
        if child_spans is not None:
            for child in child_spans:
                tracer.attach(child, span)
