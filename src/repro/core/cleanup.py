"""The cleanup scan (§3.3): serial streaming or parallel batch routing.

The scan is a pure accumulation: every table batch is routed down the
read-only skeleton and per-node statistics are incremented.  Increments
commute, but held/family store *row order* must match the serial scan for
byte-identical spill files — so the parallel path computes per-batch
:class:`~repro.core.state.NodeDelta` lists on worker threads (the numpy
routing kernels release the GIL) and applies them in the parent in scan
order.  The result is bit-identical to the serial scan at any worker
count.

Worker threads are used even when the configured backend is ``process``:
the skeleton's statistics live in the parent's heap, and shipping them
across process boundaries would cost more than the routing it saves.

For a :class:`~repro.storage.DiskTable` the batches themselves are read
inside the workers (``read_slice`` opens a private file handle per call),
each charging a private :class:`~repro.storage.IOStats` that is merged
into the experiment's shared instance in deterministic batch order.

Shared routing kernel: the *level-wise* cleanup scans (RainForest and
QUEST, which route finished batches down a frozen partial
:class:`~repro.tree.DecisionTree`) go through the serving layer's
compiled array kernel — ``tree.compile()`` /
:class:`repro.serve.CompiledPredictor` — so production inference and
the training scans exercise one routing implementation.  BOAT's own
cleanup scan below keeps its delta path: it routes down the mutable
*skeleton* (confidence intervals, held stores), which is per-node state
the read-only compiled form deliberately does not carry.

Tracing: :func:`cleanup_scan` opens its own ``cleanup`` span (so every
caller — the static driver, the incremental rebuild — gets the same
attribution) and, on the worker-read path, one detached child span per
worker thread recording that worker's private I/O.  Worker spans are a
*breakdown* of the parent's counters, not additive to them: the private
counters are merged into the shared instance the parent span diffs.
"""

from __future__ import annotations

import threading

from ..config import DEFAULT_BATCH_ROWS
from ..observability import NULL_TRACER, NullTracer, Tracer
from ..parallel import WorkerPool
from ..storage import DiskTable, IOStats, Schema, Table
from .state import BoatNode, apply_batch_delta, compute_batch_delta, stream_batch


def cleanup_scan(
    root: BoatNode,
    table: Table,
    schema: Schema,
    batch_rows: int = DEFAULT_BATCH_ROWS,
    pool: WorkerPool | None = None,
    tracer: Tracer | NullTracer = NULL_TRACER,
) -> None:
    """Stream the whole table down the skeleton, in parallel when possible."""
    with tracer.span("cleanup", batch_rows=batch_rows) as span:
        if pool is None or not pool.is_parallel:
            span.set(workers=1)
            for batch in table.scan(batch_rows):
                stream_batch(root, batch, schema, sign=1)
            return
        span.set(workers=pool.n_workers)
        if pool.backend == "thread":
            _parallel_scan(root, table, schema, batch_rows, pool, tracer)
        else:
            with WorkerPool(pool.n_workers, "thread", tracer=tracer) as thread_pool:
                _parallel_scan(root, table, schema, batch_rows, thread_pool, tracer)


def _parallel_scan(
    root: BoatNode,
    table: Table,
    schema: Schema,
    batch_rows: int,
    pool: WorkerPool,
    tracer: Tracer | NullTracer,
) -> None:
    io = table.io_stats
    if isinstance(table, DiskTable):
        n = len(table)
        ranges = [
            (start, min(start + batch_rows, n)) for start in range(0, n, batch_rows)
        ]

        def scan_range(bounds: tuple[int, int]) -> tuple[list, IOStats, str]:
            worker_io = IOStats()
            batch = table.read_slice(bounds[0], bounds[1], io_stats=worker_io)
            deltas = compute_batch_delta(root, batch, schema)
            return deltas, worker_io, threading.current_thread().name

        # One detached span per worker thread, numbered in first-result
        # order (batch results arrive in scan order, so numbering is
        # deterministic for a given schedule; counters are deterministic
        # regardless because each batch is charged exactly once).
        worker_spans: dict[str, object] = {}
        for deltas, worker_io, worker_name in pool.imap(scan_range, ranges):
            apply_batch_delta(deltas)
            if io is not None:
                io.merge(worker_io)
            if tracer.enabled:
                span = worker_spans.get(worker_name)
                if span is None:
                    span = tracer.worker_span(f"worker-{len(worker_spans)}")
                    worker_spans[worker_name] = span
                span.add_io(worker_io)
                span.bump("batches")
        for span in worker_spans.values():
            tracer.attach(span)
        if io is not None:
            io.record_full_scan()
        return

    # Generic tables (e.g. MemoryTable): the parent iterates the scan —
    # which keeps the table's own charging semantics — and workers route.
    def route(batch) -> list:
        return compute_batch_delta(root, batch, schema)

    for deltas in pool.imap(route, table.scan(batch_rows)):
        apply_batch_delta(deltas)
