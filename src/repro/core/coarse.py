"""Coarse splitting criteria (Figure 2 of the paper).

The sampling phase attaches one coarse criterion to each node of the
skeleton tree:

* numerical — the splitting attribute plus a closed confidence interval
  ``[low, high]`` that contains the final split point with high
  probability.  During the cleanup scan, tuples with an attribute value
  inside the interval are *held* at the node; tuples outside route to a
  child unambiguously because every split point in the interval routes
  them identically.
* categorical — the splitting attribute plus the (claimed-final) splitting
  subset; nothing is held because the subset is either exactly right or
  the subtree is rebuilt.

A frontier node of the skeleton carries no criterion; the scan collects
its whole family for in-memory completion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kernels import DEFAULT_KERNELS, KernelBackend
from ..storage import Schema


@dataclass(frozen=True)
class CoarseNumeric:
    """Coarse criterion for a numerical splitting attribute."""

    attribute_index: int
    low: float
    high: float

    def __post_init__(self) -> None:
        if not self.low <= self.high:
            raise ValueError(f"empty confidence interval [{self.low}, {self.high}]")

    def masks(
        self,
        batch: np.ndarray,
        schema: Schema,
        kernels: KernelBackend = DEFAULT_KERNELS,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(below, held, above) boolean masks for a batch.

        below: ``X < low`` (routes left under any split in the interval),
        held: ``low <= X <= high``, above: ``X > high`` (routes right).
        """
        values = batch[schema[self.attribute_index].name]
        return kernels.interval_masks(values, self.low, self.high)

    def describe(self, schema: Schema) -> str:
        name = schema[self.attribute_index].name
        return f"{name} in [{self.low:g}, {self.high:g}]"


@dataclass(frozen=True)
class CoarseCategorical:
    """Coarse criterion for a categorical splitting attribute."""

    attribute_index: int
    subset: frozenset[int]

    def go_left(
        self,
        batch: np.ndarray,
        schema: Schema,
        kernels: KernelBackend = DEFAULT_KERNELS,
    ) -> np.ndarray:
        codes = batch[schema[self.attribute_index].name]
        return kernels.subset_mask(codes, self.subset)

    def describe(self, schema: Schema) -> str:
        name = schema[self.attribute_index].name
        return f"{name} in {{{','.join(str(c) for c in sorted(self.subset))}}}"


CoarseCriterion = CoarseNumeric | CoarseCategorical
