"""BOAT's sampling phase (§3.2): bootstrapped coarse splitting criteria.

From the in-memory sample D' we grow ``b`` bootstrap trees (resampling D'
with replacement) and intersect them top-down:

* all ``b`` trees must split the node on the same attribute — otherwise
  the node becomes a *frontier* node (its subtree is completed in-memory
  during finalization);
* a categorical attribute additionally requires all ``b`` splitting
  subsets to be identical (the paper's stringent treatment — subtrees
  below differing subsets are incomparable);
* a numerical attribute yields a confidence interval spanning the ``b``
  bootstrap split points, widened by a configurable fraction.

The intersection simultaneously routes D' down the skeleton to build, at
every node, the adaptive discretizations for the Lemma 3.1 failure check
(:mod:`repro.core.discretize`) — many buckets where the sample impurity
profile flirts with the minimum, few elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import BoatConfig, SplitConfig
from ..exceptions import SplitSelectionError
from ..kernels import DEFAULT_KERNELS
from ..observability import NULL_TRACER, NullTracer, Tracer
from ..parallel import WorkerPool, chunked
from ..splits.base import CategoricalSplit, NumericSplit
from ..splits.categorical import best_categorical_split
from ..splits.methods import ImpuritySplitSelection
from ..splits.numeric import numeric_profile
from ..storage import CLASS_COLUMN, IOStats, Schema
from ..tree import DecisionTree, Node, tree_from_dict
from .coarse import CoarseCategorical, CoarseNumeric
from .discretize import build_discretization, interval_forced_edges
from .state import BoatNode
from .workers import bootstrap_trees_task, init_build_context


@dataclass
class SamplingReport:
    """Diagnostics of one sampling phase."""

    sample_size: int = 0
    bootstrap_repetitions: int = 0
    skeleton_nodes: int = 0
    frontier_nodes: int = 0
    attribute_disagreements: int = 0
    subset_disagreements: int = 0
    interval_widths: list[float] = field(default_factory=list)


@dataclass
class SamplingResult:
    """The skeleton with coarse criteria, plus diagnostics."""

    root: BoatNode
    report: SamplingReport


class _SkeletonBuilder:
    def __init__(
        self,
        schema: Schema,
        method: ImpuritySplitSelection,
        split_config: SplitConfig,
        boat_config: BoatConfig,
        table_size: int,
        sample_size: int,
        spill_dir: str | None,
        io_stats: IOStats | None,
        durable_dir: str | None = None,
    ):
        self._schema = schema
        self._method = method
        self._split_config = split_config
        self._config = boat_config
        self._table_size = table_size
        self._sample_size = max(sample_size, 1)
        self._spill_dir = spill_dir
        self._io_stats = io_stats
        self._durable_dir = durable_dir
        self._next_id = 0
        self.report = SamplingReport(
            sample_size=sample_size,
            bootstrap_repetitions=boat_config.bootstrap_repetitions,
        )

    def _allocate_id(self) -> int:
        nid = self._next_id
        self._next_id += 1
        return nid

    def build(self, nodes: list[Node], sample_family: np.ndarray, depth: int) -> BoatNode:
        self.report.skeleton_nodes += 1
        criterion = self._agree(nodes, depth)
        estimated = int(
            round(len(sample_family) / self._sample_size * self._table_size)
        )
        if criterion is not None and (
            0
            < self._config.inmemory_threshold
            and estimated <= self._config.inmemory_threshold
        ):
            criterion = None
        if criterion is None:
            self.report.frontier_nodes += 1
            return BoatNode(
                self._allocate_id(),
                depth,
                None,
                self._schema,
                {},
                self._config,
                self._spill_dir,
                self._io_stats,
                estimated,
                durable_dir=self._durable_dir,
            )
        profiles, best_estimate = self._profiles(sample_family)
        if isinstance(criterion, CoarseNumeric):
            criterion = self._extend_interval(
                criterion, profiles, best_estimate, sample_family
            )
            self.report.interval_widths.append(criterion.high - criterion.low)
        edges = self._edges(profiles, criterion, best_estimate)
        boat_node = BoatNode(
            self._allocate_id(),
            depth,
            criterion,
            self._schema,
            edges,
            self._config,
            self._spill_dir,
            self._io_stats,
            estimated,
            durable_dir=self._durable_dir,
        )
        go_left = self._route_mask(sample_family, criterion, nodes)
        boat_node.left = self.build(
            [n.left for n in nodes], sample_family[go_left], depth + 1
        )
        boat_node.right = self.build(
            [n.right for n in nodes], sample_family[~go_left], depth + 1
        )
        boat_node.left.parent = boat_node
        boat_node.right.parent = boat_node
        return boat_node

    def _agree(
        self, nodes: list[Node], depth: int
    ) -> CoarseNumeric | CoarseCategorical | None:
        """The coarse criterion if all bootstrap trees agree, else None."""
        if any(n.is_leaf for n in nodes):
            return None
        if (
            self._split_config.max_depth is not None
            and depth >= self._split_config.max_depth
        ):
            return None
        splits = [n.split for n in nodes]
        first = splits[0]
        if any(
            s.attribute_index != first.attribute_index or type(s) is not type(first)
            for s in splits
        ):
            self.report.attribute_disagreements += 1
            return None
        if isinstance(first, CategoricalSplit):
            if any(s.subset != first.subset for s in splits):
                self.report.subset_disagreements += 1
                return None
            return CoarseCategorical(first.attribute_index, first.subset)
        values = np.array([s.value for s in splits], dtype=np.float64)
        low = float(values.min())
        high = float(values.max())
        pad = self._config.interval_widening * (high - low)
        return CoarseNumeric(first.attribute_index, low - pad, high + pad)

    def _route_mask(
        self,
        sample_family: np.ndarray,
        criterion: CoarseNumeric | CoarseCategorical,
        nodes: list[Node],
    ) -> np.ndarray:
        """Go-left mask for routing D' down the skeleton.

        Numeric skeleton nodes route by the *median* bootstrap split point
        — any representative inside the interval works; it only shapes the
        discretizations of descendants, never correctness.
        """
        if isinstance(criterion, CoarseCategorical):
            return criterion.go_left(sample_family, self._schema)
        values = np.sort(
            np.array([n.split.value for n in nodes], dtype=np.float64)
        )
        median = float(values[len(values) // 2])
        column = sample_family[self._schema[criterion.attribute_index].name]
        return column <= median

    def _profiles(
        self, sample_family: np.ndarray
    ) -> tuple[dict[int, "object"], float]:
        """Sample impurity profiles per numeric attribute + best estimate.

        The best estimate spans *all* attributes (categorical included) —
        it anchors both the adaptive interval widening and the boundary
        placement weights.
        """
        impurity = self._method.impurity
        kernels = getattr(self._method, "kernels", DEFAULT_KERNELS)
        labels = sample_family[CLASS_COLUMN]
        k = self._schema.n_classes
        min_leaf = self._split_config.min_samples_leaf
        profiles: dict[int, object] = {}
        best_estimate = np.inf
        for index, attr in enumerate(self._schema.attributes):
            column = sample_family[attr.name]
            if attr.is_numerical:
                profile = numeric_profile(
                    column, labels, k, impurity, min_leaf, kernels=kernels
                )
                profiles[index] = profile
                found = profile.best()
                if found is not None and found[0] < best_estimate:
                    best_estimate = found[0]
            else:
                found = best_categorical_split(
                    column,
                    labels,
                    attr.domain_size,
                    k,
                    impurity,
                    min_leaf,
                    self._split_config.max_categorical_exhaustive,
                    kernels=kernels,
                )
                if found is not None and found[0] < best_estimate:
                    best_estimate = found[0]
        if not np.isfinite(best_estimate):
            best_estimate = 0.0
        return profiles, best_estimate

    def _extend_interval(
        self,
        criterion: CoarseNumeric,
        profiles: dict[int, "object"],
        best_estimate: float,
        sample_family: np.ndarray,
    ) -> CoarseNumeric:
        """Widen the interval over the sample profile's near-minimum plateau.

        Candidates whose sample impurity sits within
        ``interval_impurity_slack * (node impurity - best)`` of the best
        are exactly the ones the corner bound cannot separate from i'
        later; holding them costs memory but prevents false-alarm
        rebuilds on flat impurity plateaus.
        """
        profile = profiles.get(criterion.attribute_index)
        if profile is None or profile.n_candidates == 0:
            return criterion
        impurity = self._method.impurity
        counts = np.bincount(
            sample_family[CLASS_COLUMN], minlength=self._schema.n_classes
        )
        node_imp = impurity.node_impurity(counts)
        slack = self._config.interval_impurity_slack * max(
            node_imp - best_estimate, 0.0
        )
        close = profile.admissible & (profile.impurities <= best_estimate + slack)
        if not close.any():
            return criterion
        values = profile.candidates[close]
        return CoarseNumeric(
            criterion.attribute_index,
            min(criterion.low, float(values.min())),
            max(criterion.high, float(values.max())),
        )

    def _edges(
        self,
        profiles: dict[int, "object"],
        criterion: CoarseNumeric | CoarseCategorical,
        best_estimate: float,
    ) -> dict[int, np.ndarray]:
        """Discretization edges for every numerical attribute at this node."""
        edges: dict[int, np.ndarray] = {}
        for index, profile in profiles.items():
            forced: tuple[float, ...] = ()
            exclude: tuple[float, float] | None = None
            if (
                isinstance(criterion, CoarseNumeric)
                and index == criterion.attribute_index
            ):
                forced = interval_forced_edges(criterion.low, criterion.high)
                exclude = (criterion.low, criterion.high)
            edges[index] = build_discretization(
                profile,
                best_estimate,
                self._config.bucket_budget,
                forced,
                exclude,
            )
        return edges


def build_bootstrap_trees(
    sample: np.ndarray,
    schema: Schema,
    method: ImpuritySplitSelection,
    split_config: SplitConfig,
    boat_config: BoatConfig,
    rng: np.random.Generator,
    pool: WorkerPool | None = None,
) -> list[DecisionTree]:
    """Grow the ``b`` bootstrap trees, optionally on a worker pool.

    One entropy value is drawn from ``rng`` and expanded into ``b``
    :class:`~numpy.random.SeedSequence` children, one per repetition, so
    every repetition's resample is a pure function of (sample, child).
    The serial path and every pool backend therefore produce bit-identical
    trees; a pool merely changes where the work runs.

    ``pool``, when parallel, must have been created with
    :func:`repro.core.workers.init_build_context` as its initializer and
    this call's (sample, schema, method, split_config, subsample) as the
    init args — :func:`repro.core.boat.make_build_pool` does exactly that.
    """
    subsample = boat_config.bootstrap_subsample or len(sample)
    repetitions = boat_config.bootstrap_repetitions
    entropy = int(rng.integers(0, np.iinfo(np.int64).max))
    children = np.random.SeedSequence(entropy).spawn(repetitions)
    if pool is not None and pool.is_parallel:
        # ~2 chunks per worker balances load against per-task overhead.
        chunk_size = max(1, -(-repetitions // (pool.n_workers * 2)))
        parts = pool.map(bootstrap_trees_task, chunked(children, chunk_size))
        tree_dicts = [d for part in parts for d in part]
    else:
        init_build_context(sample, schema, method, split_config, subsample)
        tree_dicts = bootstrap_trees_task(children)
    return [tree_from_dict(d) for d in tree_dicts]


def sampling_phase(
    sample: np.ndarray,
    schema: Schema,
    method: ImpuritySplitSelection,
    split_config: SplitConfig,
    boat_config: BoatConfig,
    table_size: int,
    rng: np.random.Generator,
    spill_dir: str | None = None,
    io_stats: IOStats | None = None,
    pool: WorkerPool | None = None,
    tracer: Tracer | NullTracer = NULL_TRACER,
    durable_dir: str | None = None,
) -> SamplingResult:
    """Run the sampling phase: bootstrap trees → skeleton with coarse criteria.

    Args:
        sample: the in-memory sample D'.
        table_size: |D|, used to estimate family sizes for the in-memory
            switch.
        rng: drives the bootstrap seeding only.
        pool: optional worker pool for growing the bootstrap trees
            concurrently (see :func:`build_bootstrap_trees` for the
            initializer contract).  The output is identical with or
            without it.
        tracer: records the ``bootstrap`` (tree growing) and ``coarse``
            (skeleton intersection) spans.
        durable_dir: checkpointed builds pass their spill directory here
            so node stores get deterministic, recoverable file names
            (see :func:`repro.core.state.durable_store_path`).
    """
    if not isinstance(method, ImpuritySplitSelection):
        raise SplitSelectionError(
            "the impurity-mode sampling phase requires an ImpuritySplitSelection"
        )
    if len(sample) == 0:
        raise SplitSelectionError("cannot run the sampling phase on an empty sample")
    with tracer.span(
        "bootstrap",
        repetitions=boat_config.bootstrap_repetitions,
        sample_rows=len(sample),
    ):
        trees = build_bootstrap_trees(
            sample, schema, method, split_config, boat_config, rng, pool
        )
    builder = _SkeletonBuilder(
        schema,
        method,
        split_config,
        boat_config,
        table_size,
        len(sample),
        spill_dir,
        io_stats,
        durable_dir,
    )
    with tracer.span("coarse") as coarse_span:
        root = builder.build([t.root for t in trees], sample, 0)
        coarse_span.set(
            skeleton_nodes=builder.report.skeleton_nodes,
            frontier_nodes=builder.report.frontier_nodes,
            attribute_disagreements=builder.report.attribute_disagreements,
            subset_disagreements=builder.report.subset_disagreements,
        )
    return SamplingResult(root=root, report=builder.report)
