"""The cleanup scan as grouped aggregation inside the database.

Every tuple streamed down the skeleton terminates in exactly one
*terminal*: the held store of a :class:`CoarseNumeric` node (value inside
the confidence interval, or NaN) or the family store of a frontier node.
That makes the terminal a GROUP BY key: routing is a nested SQL ``CASE``
expression mapping each row to its terminal's node id
(:func:`routing_expression`), and every per-node statistic the cleanup
scan accumulates is a sum of per-terminal grouped counts —

* ``class_counts(n)``      = Σ histograms over terminals in subtree(n),
* ``below_counts(n)``      = Σ over subtree(n.left)  (``above``: right),
* ``cat_counts[a](n)``     = Σ contingency matrices over subtree(n),
* ``bucket_counts[a](n)``  = one grouped query per (node, attribute),
  since bucket edges are per-node.

So the statistics never leave the database.  What must still be exported
are the rows themselves that the skeleton *holds* — held and family
tuples feed the exact split refinement of the finalize phase — and they
are fetched in one ordered pass that partitions each batch by terminal,
preserving global scan order per store, which keeps spill files (and
therefore the finished tree) byte-identical to the streamed scan.

Cost model: the export pass charges per-batch reads plus one
``record_full_scan()`` — the algorithm's one logical cleanup scan.  The
aggregation queries charge nothing; they are work the database does
where the data lives (see docs/SQL.md for the honesty argument).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..kernels.sql import SqlAggregations
from ..storage.schema import Schema
from .coarse import CoarseCategorical, CoarseNumeric
from .state import BoatNode

#: Progress callback: absolute rows exported so far (matches cleanup_scan).
ProgressFn = Callable[[int], None]


def _is_terminal(node: BoatNode) -> bool:
    return node.is_frontier or isinstance(node.criterion, CoarseNumeric)


def _subtree_terminals(node: BoatNode) -> list[int]:
    return [n.node_id for n in node.nodes() if _is_terminal(n)]


def routing_expression(
    node: BoatNode, schema: Schema, quote
) -> tuple[str, list]:
    """Nested CASE mapping a row to the node id of its terminal.

    Mirrors the streaming router exactly: a ``CoarseNumeric`` node sends
    ``v < low`` left and ``v > high`` right, everything else — including
    NaN, which sqlite stores as NULL so both comparisons evaluate to
    NULL/false — is held *at this node*; a ``CoarseCategorical`` node
    routes by subset membership; a frontier node is its own terminal.
    Returns ``(sql, params)`` with parameters in textual order.
    """
    if node.is_frontier:
        return str(node.node_id), []
    column = quote(schema[node.criterion.attribute_index].name)
    left_sql, left_params = routing_expression(node.left, schema, quote)
    right_sql, right_params = routing_expression(node.right, schema, quote)
    if isinstance(node.criterion, CoarseCategorical):
        if not node.criterion.subset:
            return right_sql, right_params
        codes = ", ".join(str(int(c)) for c in sorted(node.criterion.subset))
        return (
            f"(CASE WHEN {column} IN ({codes}) "
            f"THEN {left_sql} ELSE {right_sql} END)",
            left_params + right_params,
        )
    return (
        f"(CASE WHEN {column} < ? THEN {left_sql} "
        f"WHEN {column} > ? THEN {right_sql} "
        f"ELSE {node.node_id} END)",
        [float(node.criterion.low)]
        + left_params
        + [float(node.criterion.high)]
        + right_params,
    )


def sql_pushdown_scan(
    root: BoatNode,
    table,
    schema: Schema,
    batch_rows: int,
    progress: ProgressFn | None = None,
) -> None:
    """Run the cleanup scan in-database over a ``SqlTable``.

    Equivalent to streaming every row through
    :func:`~repro.core.state.stream_batch` — same counts, same store
    contents in the same order — with the counting done by grouped
    aggregation queries and only held/family rows exported.
    """
    aggregations = SqlAggregations(table)
    quote = table.dialect.quote
    route_sql, route_params = routing_expression(root, schema, quote)
    k = schema.n_classes
    nodes = list(root.nodes())
    terminals = {node.node_id: _subtree_terminals(node) for node in nodes}

    histograms = aggregations.grouped_class_histograms(
        route_sql, route_params, k
    )

    def subtree_sum(ids: list[int]) -> np.ndarray:
        total = np.zeros(k, dtype=np.int64)
        for terminal in ids:
            hist = histograms.get(terminal)
            if hist is not None:
                total += hist
        return total

    for node in nodes:
        node.dirty = True
        node.class_counts += subtree_sum(terminals[node.node_id])
        if isinstance(node.criterion, CoarseNumeric):
            node.below_counts += subtree_sum(terminals[node.left.node_id])
            node.above_counts += subtree_sum(terminals[node.right.node_id])

    # One grouped contingency query per categorical attribute any internal
    # node tracks; each node then sums its subtree's terminals.
    cat_indices = sorted({i for node in nodes for i in node.cat_counts})
    for index in cat_indices:
        attribute = schema[index]
        per_terminal = aggregations.grouped_category_class_counts(
            route_sql, route_params, attribute.name, attribute.domain_size, k
        )
        for node in nodes:
            if index not in node.cat_counts:
                continue
            for terminal in terminals[node.node_id]:
                counts = per_terminal.get(terminal)
                if counts is not None:
                    node.cat_counts[index] += counts

    # Bucket edges are per-node, so bucket counts need one query per
    # (node, numerical attribute), restricted to the node's subtree.
    for node in nodes:
        for index, edges in node.bucket_edges.items():
            node.bucket_counts[index] += aggregations.bucket_class_counts(
                schema[index].name,
                edges,
                k,
                route_sql,
                route_params,
                terminals[node.node_id],
            )

    _export_held_rows(
        root, table, schema, batch_rows, route_sql, route_params, progress
    )


def _export_held_rows(
    root: BoatNode,
    table,
    schema: Schema,
    batch_rows: int,
    route_sql: str,
    route_params: list,
    progress: ProgressFn | None,
) -> None:
    """The one row-export pass: held/family tuples, in global scan order."""
    stores = {
        node.node_id: node.held if node.held is not None else node.family_store
        for node in root.nodes()
        if _is_terminal(node)
    }
    cursor = table.execute(
        f"SELECT {route_sql} AS __node, {table.select_columns_sql} "
        f"FROM {table.source_sql} ORDER BY {table.order_sql}",
        route_params,
    )
    io = table.io_stats
    rows_done = 0
    try:
        while True:
            rows = cursor.fetchmany(batch_rows)
            if not rows:
                break
            routed = np.asarray([row[0] for row in rows], dtype=np.int64)
            batch = table.decode_rows([row[1:] for row in rows])
            if io is not None:
                io.record_read(len(batch), batch.nbytes)
            for terminal in np.unique(routed):
                slice_ = batch[routed == terminal]
                stores[int(terminal)].append(slice_)
            rows_done += len(batch)
            if progress is not None:
                progress(rows_done)
    finally:
        cursor.close()
    if io is not None:
        io.record_full_scan()
