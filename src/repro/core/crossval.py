"""k-fold cross-validation in three database scans (§2's aside).

The paper notes that although MDL pruning is preferred at scale,
cross-validation for large training sets also benefits from BOAT: the
k per-fold trees can share scans instead of paying k separate
constructions.  This module realizes that:

* scan 1 draws one sample; each fold's sampling phase uses the sample
  minus its own fold's records,
* scan 2 is a shared cleanup scan — every batch is streamed through all
  k skeletons, each skeleton skipping its own fold,
* scan 3 evaluates every record against its own fold's finished tree.

Fold assignment is by global row position modulo k — deterministic
across scans, so training and evaluation partitions agree exactly.

Every fold tree is exactly the reference tree of its training partition
(the BOAT guarantee applies per fold).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..config import BoatConfig, SplitConfig
from ..exceptions import SplitSelectionError
from ..splits.methods import ImpuritySplitSelection
from ..storage import CLASS_COLUMN, Table
from ..tree import DecisionTree, build_reference_tree
from .bootstrap import sampling_phase
from .cleanup import shared_cleanup_scan
from .finalize import finalize_tree
from .state import stream_batch


@dataclass
class CrossValidationResult:
    """k fold trees plus their held-out error estimates.

    Attributes:
        trees: fold trees; ``trees[f]`` was trained on every record whose
            global row position is not congruent to f modulo k.
        fold_errors: held-out misclassification rate per fold.
        scans: database scans consumed (3 when all folds take the BOAT
            path; fewer only for degenerate inputs).
        wall_seconds: total wall-clock time.
    """

    trees: list[DecisionTree]
    fold_errors: list[float]
    scans: int
    wall_seconds: float

    @property
    def mean_error(self) -> float:
        return float(np.mean(self.fold_errors)) if self.fold_errors else 0.0


def boat_cross_validate(
    table: Table,
    k: int,
    method: ImpuritySplitSelection,
    split_config: SplitConfig | None = None,
    boat_config: BoatConfig | None = None,
    spill_dir: str | None = None,
) -> CrossValidationResult:
    """k-fold cross-validation sharing scans across all folds."""
    if k < 2:
        raise SplitSelectionError("cross-validation needs k >= 2")
    if len(table) < k:
        raise SplitSelectionError("table smaller than the number of folds")
    split_config = split_config or SplitConfig()
    boat_config = boat_config or BoatConfig()
    start = time.perf_counter()
    rng = np.random.default_rng(boat_config.seed)
    schema = table.schema
    n = len(table)

    # -- scan 1: one shared sample, with global positions retained -------
    size = min(boat_config.sample_size, n)
    chosen = np.sort(rng.choice(n, size=size, replace=False))
    sample = schema.empty(size)
    sample_positions = chosen
    filled = 0
    offset = 0
    for batch in table.scan(boat_config.batch_rows):
        lo = np.searchsorted(chosen, offset, side="left")
        hi = np.searchsorted(chosen, offset + len(batch), side="left")
        if hi > lo:
            sample[filled : filled + hi - lo] = batch[chosen[lo:hi] - offset]
            filled += hi - lo
        offset += len(batch)
    scans = 1

    small = size >= n  # whole table in memory: fall back per fold
    sample_folds = sample_positions % k
    skeletons = []
    if not small:
        for fold in range(k):
            training_sample = sample[sample_folds != fold]
            result = sampling_phase(
                training_sample,
                schema,
                method,
                split_config,
                boat_config,
                n - n // k,
                rng,
                spill_dir,
                table.io_stats,
            )
            skeletons.append(result.root)

        # -- scan 2: shared cleanup scan ---------------------------------
        def fold_sink(fold: int, skeleton):
            def sink(batch: np.ndarray, offset: int) -> None:
                folds = (offset + np.arange(len(batch))) % k
                stream_batch(skeleton, batch[folds != fold], schema)

            return sink

        shared_cleanup_scan(
            table,
            [fold_sink(fold, s) for fold, s in enumerate(skeletons)],
            boat_config.batch_rows,
            labels=[f"fold-{fold}" for fold in range(k)],
        )
        scans += 1

        trees = []
        for skeleton in skeletons:
            tree, _ = finalize_tree(skeleton, schema, method, split_config)
            trees.append(tree)
            skeleton.release()
    else:
        family = sample  # == the full table
        trees = []
        for fold in range(k):
            trees.append(
                build_reference_tree(
                    family[sample_folds != fold], schema, method, split_config
                )
            )

    # -- scan 3: held-out evaluation, all folds in one pass ---------------
    errors = np.zeros(k, dtype=np.int64)
    totals = np.zeros(k, dtype=np.int64)
    offset = 0
    for batch in table.scan(boat_config.batch_rows):
        folds = (offset + np.arange(len(batch))) % k
        for fold in range(k):
            mask = folds == fold
            if not mask.any():
                continue
            rows = batch[mask]
            predicted = trees[fold].predict(rows)
            errors[fold] += int(np.sum(predicted != rows[CLASS_COLUMN]))
            totals[fold] += len(rows)
        offset += len(batch)
    scans += 1

    fold_errors = [
        float(errors[f]) / totals[f] if totals[f] else 0.0 for f in range(k)
    ]
    return CrossValidationResult(
        trees=trees,
        fold_errors=fold_errors,
        scans=scans,
        wall_seconds=time.perf_counter() - start,
    )
