"""An asyncio HTTP front end over the streaming service.

The threaded stdlib :class:`~repro.serve.PredictionServer` burns one OS
thread per in-flight request; under sustained mixed update+predict
traffic that is the wrong shape.  :class:`StreamServer` replaces it for
the streaming workload with a single-threaded asyncio reactor
(``asyncio.start_server``, stdlib only): connections are cheap coroutine
state, request handlers submit to the non-blocking ingest queue and
request batcher, and only the *wait* for a ticket is pushed off the
event loop (``asyncio.to_thread``), so thousands of idle keep-alive
connections cost nothing and the coalescing batcher still sees all the
concurrency.

Endpoints:

``POST /update``
    Body ``{"op": "insert"|"delete", "records": [...]}`` where every
    record carries the predictor attributes *and* the ``class_label``
    (array records list it last).  By default the update is
    acknowledged as soon as the queue accepts it — 202 with the queue
    position; with ``"wait": true`` the response blocks until the
    update is applied and published: 200 with the new model version and
    the patch/rebuild outcome.  Errors map
    :class:`~repro.exceptions.StreamError`'s ``http_status``: 400
    poisoned batch, 413 oversized, 429 backpressure, 503 shut down or
    degraded.

``POST /predict``
    Same contract as the threaded server (records without labels,
    optional ``"proba"``), served through the shared batcher.

``GET /healthz``
    ``{"status": "ok", "version": n, "maintenance": "ok"|"degraded"}``
    — 503 before the first publish.

``GET /stats``
    The service's merged loop snapshot: model version, queue depth,
    staleness seconds + pending-update count, maintain and serve
    counters with latency percentiles.
"""

from __future__ import annotations

import asyncio
import json
import threading

from ..exceptions import ReproError, SchemaError, ServeError, StreamError
from ..serve.server import records_to_batch
from .service import StreamService

_MAX_BODY = 64 << 20  # one very generous bound; requests are micro-batches


class StreamServer:
    """Serves a :class:`StreamService` over asyncio HTTP/1.1.

    Usage::

        with StreamService.build(table, method) as service:
            with StreamServer(service, port=0) as server:
                print(server.url)          # http://127.0.0.1:<port>

    The reactor runs on a dedicated thread so the caller keeps a normal
    synchronous lifecycle; ``port=0`` binds an ephemeral port.
    """

    def __init__(
        self,
        service: StreamService,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.service = service
        self._host = host
        self._requested_port = port
        self._port: int | None = None
        self._thread: threading.Thread | None = None
        self._aio_loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._served = 0

    # -- lifecycle ------------------------------------------------------------

    @property
    def port(self) -> int:
        if self._port is None:
            raise StreamError("stream server is not running", http_status=503)
        return self._port

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}"

    @property
    def served_requests(self) -> int:
        """Successfully answered /update + /predict requests so far."""
        return self._served

    def start(self) -> "StreamServer":
        if self._thread is not None:
            raise StreamError("stream server is already started")
        self._thread = threading.Thread(
            target=self._run_reactor, name="repro-stream-http", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            self._thread.join()
            self._thread = None
            raise StreamError(
                f"stream server failed to start: {self._startup_error}",
                http_status=503,
            )
        return self

    def close(self) -> None:
        if self._thread is None:
            return
        loop, stop = self._aio_loop, self._stop
        if loop is not None and stop is not None:
            loop.call_soon_threadsafe(stop.set)
        self._thread.join()
        self._thread = None
        self._aio_loop = None
        self._port = None

    def __enter__(self) -> "StreamServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def _run_reactor(self) -> None:
        try:
            asyncio.run(self._serve())
        except BaseException as exc:  # noqa: BLE001 - surfaced to start()
            self._startup_error = exc
            self._ready.set()

    async def _serve(self) -> None:
        self._aio_loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_connection, self._host, self._requested_port
        )
        self._port = server.sockets[0].getsockname()[1]
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()

    # -- one connection -------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                status, payload = await self._dispatch(method, path, body)
                keep_alive = headers.get("connection", "keep-alive") != "close"
                await self._write_response(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader):
        request_line = await reader.readline()
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if not 0 <= length <= _MAX_BODY:
            return None
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    async def _write_response(
        self, writer, status: int, payload: dict, keep_alive: bool
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # -- dispatch -------------------------------------------------------------

    async def _dispatch(self, method, path, body) -> tuple[int, dict]:
        try:
            if method == "GET" and path == "/healthz":
                return self._healthz()
            if method == "GET" and path == "/stats":
                return 200, self.service.stats()
            if method == "POST" and path == "/predict":
                return await self._predict(body)
            if method == "POST" and path == "/update":
                return await self._update(body)
            return 404, {"error": f"no such endpoint: {method} {path}"}
        except (StreamError, ServeError) as exc:
            return exc.http_status, {"error": str(exc)}
        except (SchemaError, ReproError) as exc:
            return 400, {"error": str(exc)}

    def _healthz(self) -> tuple[int, dict]:
        version = self.service.version
        maintenance = "degraded" if self.service.loop.degraded else "ok"
        if version == 0:
            return 503, {"status": "empty", "version": 0}
        return 200, {
            "status": "ok", "version": version, "maintenance": maintenance
        }

    def _payload(self, body: bytes) -> dict:
        try:
            payload = json.loads(body or b"{}")
        except json.JSONDecodeError as exc:
            raise StreamError(f"request body is not valid JSON: {exc}")
        if not isinstance(payload, dict) or "records" not in payload:
            raise StreamError("request body needs a 'records' array")
        return payload

    async def _predict(self, body: bytes) -> tuple[int, dict]:
        payload = self._payload(body)
        batch = records_to_batch(self.service.schema, payload["records"])
        proba = bool(payload.get("proba", False))
        ticket = self.service.submit_predict(batch, proba=proba)
        result = await asyncio.to_thread(ticket.result)
        self._served += 1
        response: dict = {"version": ticket.version, "rows": len(batch)}
        if proba:
            response["proba"] = [list(row) for row in result]
        else:
            response["labels"] = [int(v) for v in result]
        return 200, response

    async def _update(self, body: bytes) -> tuple[int, dict]:
        payload = self._payload(body)
        operation = payload.get("op", "insert")
        batch = records_to_batch(
            self.service.schema, payload["records"], require_label=True
        )
        ticket = self.service.submit_update(operation, batch)
        if not payload.get("wait", False):
            pending, staleness_s = self.service.loop.staleness()
            self._served += 1
            return 202, {
                "accepted": len(batch),
                "op": operation,
                "pending_updates": pending,
                "staleness_s": round(staleness_s, 6),
            }
        report = await asyncio.to_thread(ticket.result)
        self._served += 1
        return 200, {
            "applied": len(batch),
            "op": operation,
            "version": ticket.version,
            "rebuilds": report.finalize.rebuilds,
            "drift": report.drift,
        }


_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}
