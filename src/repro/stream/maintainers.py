"""Maintenance-by-rebuild: exact streaming updates for any split method.

:class:`~repro.core.IncrementalBoat` is the paper's §4 maintainer — it
patches the optimistic skeleton and only rebuilds drifted subtrees.  Its
finalization path is impurity-based, so it covers every
:class:`~repro.splits.ImpuritySplitSelection` but not QUEST, whose
skeleton machinery (``repro.core.quest_boat``) has no insert/delete
support.  :class:`RebuildMaintainer` fills that gap with the brute
baseline the paper compares against: keep the live training multiset in
a (spillable) store and rebuild the tree from scratch on every update.

It exposes the same maintainer protocol the streaming service consumes —
``insert``/``delete`` returning an :class:`~repro.core.UpdateReport`,
``tree``, ``schema``, ``n_rows``, ``stored_rows``, ``materialize``,
``add_listener``, ``close`` — so :class:`~repro.serve.ModelRegistry.follow`
and the maintenance loop treat both interchangeably.  Every update is an
exact from-scratch build, so equivalence with the reference tree is by
construction; what the property suite checks through this class is the
multiset bookkeeping (bitwise delete matching, order preservation).
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from ..config import SplitConfig
from ..core import UpdateReport
from ..core.finalize import FinalizeReport
from ..core.state import multiset_remove
from ..exceptions import TreeStructureError
from ..splits.base import SplitSelectionMethod
from ..storage import IOStats, Schema
from ..storage.spill import TupleStore
from ..tree import DecisionTree, build_reference_tree


class RebuildMaintainer:
    """A decision tree maintained by exact rebuild on every update."""

    def __init__(
        self,
        schema: Schema,
        build_fn: Callable[[np.ndarray], DecisionTree],
        spill_dir: str | None = None,
        memory_budget_rows: int = 1 << 20,
        io_stats: IOStats | None = None,
    ):
        self._schema = schema
        self._build_fn = build_fn
        self._store = TupleStore(
            schema, memory_budget_rows, spill_dir, io_stats
        )
        self._tree: DecisionTree | None = None
        self._listeners: list = []
        self.reports: list[UpdateReport] = []

    @classmethod
    def from_chunk(
        cls,
        chunk: np.ndarray,
        schema: Schema,
        method: SplitSelectionMethod,
        split_config: SplitConfig | None = None,
        spill_dir: str | None = None,
    ) -> "RebuildMaintainer":
        """Start a rebuild-maintained tree for ``method`` (QUEST included)."""
        config = split_config or SplitConfig()
        maintainer = cls(
            schema,
            lambda rows: build_reference_tree(rows, schema, method, config),
            spill_dir=spill_dir,
        )
        maintainer.insert(chunk)
        return maintainer

    # -- updates --------------------------------------------------------------

    def insert(self, chunk: np.ndarray) -> UpdateReport:
        return self._update(chunk, "insert")

    def delete(self, chunk: np.ndarray) -> UpdateReport:
        return self._update(chunk, "delete")

    def _update(self, chunk: np.ndarray, operation: str) -> UpdateReport:
        self._schema.validate_batch(chunk)
        start = time.perf_counter()
        if operation == "insert":
            self._store.append(chunk)
        else:
            remaining = multiset_remove(self._store.read_all(), chunk)
            self._store.replace(remaining)
        rows = self._store.read_all()
        self._tree = self._build_fn(rows)
        self._tree.validate()
        report = UpdateReport(
            operation=operation,
            chunk_size=len(chunk),
            wall_seconds=time.perf_counter() - start,
            finalize=FinalizeReport(
                leaves=self._tree.n_leaves,
                rebuilds=1,
                rebuilt_tuples=len(rows),
                rebuild_reasons=["full rebuild (rebuild maintainer)"],
            ),
            drift=[],
        )
        self.reports.append(report)
        for listener in self._listeners:
            listener(self._tree)
        return report

    def add_listener(self, listener) -> None:
        """Register ``listener(tree)`` to run after every update."""
        self._listeners.append(listener)

    # -- inspection -----------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def tree(self) -> DecisionTree:
        if self._tree is None:
            raise TreeStructureError("RebuildMaintainer has no tree yet")
        return self._tree

    @property
    def n_rows(self) -> int:
        return len(self._store)

    def stored_rows(self) -> int:
        return len(self._store)

    def materialize(self) -> np.ndarray:
        return self._store.read_all()

    def close(self) -> None:
        self._store.clear()
