"""``repro.stream`` — the streaming online-learning loop.

Closes the paper-§4 update→maintain→publish→serve loop as one service:

* :class:`IngestQueue` — bounded insert/delete micro-batch buffering
  with 429 backpressure and submit-time poison rejection;
* :class:`MaintenanceLoop` — one thread coalescing queued chunks into
  the maintainer, counting patch-vs-rebuild outcomes, failing stop on a
  mid-apply fault (degraded mode) while serving stays up;
* :class:`RebuildMaintainer` — exact maintenance-by-rebuild for split
  methods without §4 incremental support (QUEST);
* :class:`StreamService` — the composition: maintainer +
  :meth:`~repro.serve.ModelRegistry.follow` publication + ingest queue
  + maintenance loop + the serving-side
  :class:`~repro.serve.RequestBatcher`, with staleness/SLO stats;
* :class:`StreamServer` — a stdlib-asyncio HTTP front end
  (POST /update, POST /predict, GET /healthz, GET /stats).

See ``docs/STREAMING.md`` for the architecture, the SLO definitions,
and the guarantees the equivalence + soak harness enforces.
"""

from .ingest import OPERATIONS, IngestQueue, UpdateTicket
from .maintain import MaintenanceLoop
from .maintainers import RebuildMaintainer
from .server import StreamServer
from .service import StreamConfig, StreamService

__all__ = [
    "OPERATIONS",
    "IngestQueue",
    "MaintenanceLoop",
    "RebuildMaintainer",
    "StreamConfig",
    "StreamServer",
    "StreamService",
    "UpdateTicket",
]
