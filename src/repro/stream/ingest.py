"""The ingest queue: bounded buffering between writers and the maintainer.

Producers :meth:`~IngestQueue.submit` insert/delete micro-batches and get
back an :class:`UpdateTicket`; the maintenance loop pops runs of
consecutive same-operation chunks (:meth:`~IngestQueue.pop_run`) and
applies them as one coalesced update.  The queue is bounded in *rows*,
not chunks: beyond ``queue_rows`` a submit is rejected immediately with
the backpressure :class:`~repro.exceptions.StreamError` (HTTP 429)
rather than buffering unboundedly — the same contract the serving-side
:class:`~repro.serve.RequestBatcher` gives readers.

Poison is rejected at the door: ``submit`` runs the schema's full batch
validation (dtype, categorical code ranges, label range) before a chunk
is admitted, so a poisoned micro-batch surfaces one clean
:class:`StreamError` to its producer and never reaches the maintainer —
the queue keeps draining and the registry stays on the last good
version.
"""

from __future__ import annotations

import threading
import time
from collections import deque

import numpy as np

from ..exceptions import SchemaError, StreamError
from ..storage import Schema

#: The two accepted update operations.
OPERATIONS = ("insert", "delete")


class UpdateTicket:
    """Handle for one submitted micro-batch; :meth:`result` blocks for it."""

    __slots__ = ("operation", "rows", "enqueued", "version",
                 "_event", "_report", "_error")

    def __init__(self, operation: str, rows: np.ndarray, enqueued: float):
        self.operation = operation
        self.rows = rows
        self.enqueued = enqueued
        #: Model version published by this update (set on success).
        self.version: int | None = None
        self._event = threading.Event()
        self._report = None
        self._error: BaseException | None = None

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None):
        """The :class:`~repro.core.UpdateReport`; raises on failure."""
        if not self._event.wait(timeout):
            raise StreamError(
                f"update not applied after {timeout:g}s "
                f"({len(self.rows)} rows still pending)",
                http_status=504,
            )
        if self._error is not None:
            raise self._error
        return self._report

    # maintenance-loop side ---------------------------------------------------

    def _resolve(self, report, version: int) -> None:
        self._report = report
        self.version = version
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


class IngestQueue:
    """A bounded FIFO of validated insert/delete micro-batches."""

    def __init__(
        self,
        schema: Schema,
        queue_rows: int = 1 << 18,
        max_chunk_rows: int = 65536,
    ):
        if queue_rows < 1:
            raise ValueError("queue_rows must be >= 1")
        if max_chunk_rows < 1:
            raise ValueError("max_chunk_rows must be >= 1")
        self.schema = schema
        self.queue_rows = queue_rows
        self.max_chunk_rows = max_chunk_rows
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._pending: deque[UpdateTicket] = deque()
        self._pending_rows = 0
        self._closed = False
        self._n_accepted = 0
        self._n_rejected = 0

    # -- producer side --------------------------------------------------------

    def submit(self, operation: str, chunk: np.ndarray) -> UpdateTicket:
        """Validate and enqueue one micro-batch; returns immediately.

        Raises :class:`StreamError`: 400 on a poisoned chunk (wrong
        operation, schema mismatch, out-of-range label), 413 on an
        oversized chunk, 429 on backpressure, 503 after :meth:`close`.
        """
        if operation not in OPERATIONS:
            raise StreamError(
                f"unknown update operation {operation!r}; "
                f"expected one of {OPERATIONS}"
            )
        chunk = np.asarray(chunk)
        if len(chunk) > self.max_chunk_rows:
            raise StreamError(
                f"micro-batch of {len(chunk)} rows exceeds the "
                f"{self.max_chunk_rows}-row chunk limit; split it",
                http_status=413,
            )
        try:
            self.schema.validate_batch(chunk)
        except SchemaError as exc:
            with self._lock:
                self._n_rejected += 1
            raise StreamError(f"poisoned micro-batch rejected: {exc}") from exc
        ticket = UpdateTicket(operation, chunk, time.monotonic())
        with self._not_empty:
            if self._closed:
                raise StreamError(
                    "ingest queue is closed; no further updates accepted",
                    http_status=503,
                )
            if self._pending_rows + len(chunk) > self.queue_rows:
                self._n_rejected += 1
                raise StreamError(
                    f"ingest queue is full ({self._pending_rows} of "
                    f"{self.queue_rows} rows pending); "
                    "backpressure — retry later",
                    http_status=429,
                )
            self._pending.append(ticket)
            self._pending_rows += len(chunk)
            self._n_accepted += 1
            self._not_empty.notify()
        return ticket

    # -- consumer side --------------------------------------------------------

    def pop_run(
        self, max_rows: int, timeout: float | None = None
    ) -> list[UpdateTicket] | None:
        """Pop a run of consecutive same-operation tickets (coalescing).

        Blocks up to ``timeout`` for the first ticket; then takes every
        immediately following ticket with the same operation until
        ``max_rows`` is reached.  Returns ``[]`` on timeout and ``None``
        once the queue is closed *and* empty (the drain-complete signal).
        """
        with self._not_empty:
            if not self._pending and not self._closed:
                self._not_empty.wait(timeout)
            if not self._pending:
                return None if self._closed else []
            run = [self._pending.popleft()]
            rows = len(run[0].rows)
            while (
                self._pending
                and self._pending[0].operation == run[0].operation
                and rows + len(self._pending[0].rows) <= max_rows
            ):
                ticket = self._pending.popleft()
                run.append(ticket)
                rows += len(ticket.rows)
            self._pending_rows -= rows
            return run

    # -- lifecycle / inspection -----------------------------------------------

    def close(self) -> None:
        """Stop accepting submissions; queued tickets remain for draining."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    def pending_chunks(self) -> int:
        with self._lock:
            return len(self._pending)

    def pending_rows(self) -> int:
        with self._lock:
            return self._pending_rows

    def oldest_age(self, now: float | None = None) -> float:
        """Seconds the oldest still-queued ticket has waited (0 if none)."""
        with self._lock:
            if not self._pending:
                return 0.0
            reference = time.monotonic() if now is None else now
            return max(0.0, reference - self._pending[0].enqueued)

    def stats(self) -> dict:
        with self._lock:
            return {
                "accepted": self._n_accepted,
                "rejected": self._n_rejected,
                "pending_chunks": len(self._pending),
                "pending_rows": self._pending_rows,
            }
