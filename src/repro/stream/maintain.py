"""The maintenance loop: one thread owning the maintainer.

A single ``repro-stream-maintain`` thread pops runs of same-operation
micro-batches off the :class:`~repro.stream.IngestQueue`, concatenates
them into one coalesced chunk, applies it through the maintainer
(:class:`~repro.core.IncrementalBoat` or
:class:`~repro.stream.RebuildMaintainer`), and resolves every ticket in
the run with the update report and the model version the update
published.  Updates are strictly serialized — the maintainer is never
touched from two threads — while publication happens inside the
maintainer's listener chain, so readers swap to the new exact tree
atomically through the :class:`~repro.serve.ModelRegistry`.

Failure handling has two planes, mirroring the serving batcher:

* **clean apply failure** — the maintainer raised before mutating any
  store (e.g. validation, a rebuild error at the start of an update).
  Every ticket in the run fails with one :class:`StreamError`; the
  registry keeps serving the last good version and the loop moves on to
  the next run.
* **mid-apply fault** — the maintainer raised *after* partially
  mutating its stores (detected by the ``stored_rows() == n_rows``
  invariant).  The maintained state is no longer trustworthy, so the
  loop enters a fail-stop **degraded** mode: every subsequent update is
  refused with a 503 :class:`StreamError` naming the original fault,
  while predictions keep flowing from the last published tree.

Tracing mirrors the batcher's worker-span discipline: one detached
``stream`` span owns a ``maintain`` child per coalesced run (operation,
chunks, rows, rebuild count, published version), attached to the owning
tracer when the loop closes.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from ..exceptions import ReproError, StreamError
from ..observability import NULL_TRACER, NullTracer, Tracer
from .ingest import IngestQueue, UpdateTicket


class MaintenanceLoop:
    """Drives a maintainer from an ingest queue on a dedicated thread."""

    def __init__(
        self,
        maintainer,
        queue: IngestQueue,
        registry=None,
        coalesce_rows: int = 65536,
        tracer: Tracer | NullTracer | None = None,
    ):
        self.maintainer = maintainer
        self.queue = queue
        #: Registry publishing the maintainer's trees (version reporting
        #: only — the publish itself rides the maintainer's listeners).
        self.registry = registry
        self.coalesce_rows = coalesce_rows
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._thread: threading.Thread | None = None
        self._stream_span = None
        self._state_lock = threading.Lock()
        self._in_flight: list[UpdateTicket] = []
        self._degraded: str | None = None
        # counters (maintenance-thread writes, stats() snapshots)
        self._applied_updates = 0
        self._applied_rows = 0
        self._patch_updates = 0
        self._rebuild_updates = 0
        self._failed_updates = 0
        self._coalesced_runs = 0

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "MaintenanceLoop":
        if self._thread is not None:
            raise StreamError("maintenance loop is already started")
        if self.tracer.enabled:
            self._stream_span = self.tracer.worker_span(
                "stream", coalesce_rows=self.coalesce_rows
            )
        self._thread = threading.Thread(
            target=self._run, name="repro-stream-maintain", daemon=True
        )
        self._thread.start()
        return self

    def close(self) -> None:
        """Close the queue, drain every pending run, stop the thread."""
        self.queue.close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        if self._stream_span is not None:
            self._stream_span.set(
                applied_updates=self._applied_updates,
                applied_rows=self._applied_rows,
                patch_updates=self._patch_updates,
                rebuild_updates=self._rebuild_updates,
                failed_updates=self._failed_updates,
                runs=self._coalesced_runs,
                degraded=self._degraded is not None,
            )
            self.tracer.attach(self._stream_span)
            self._stream_span = None

    def __enter__(self) -> "MaintenanceLoop":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- the loop -------------------------------------------------------------

    def _run(self) -> None:
        while True:
            run = self.queue.pop_run(self.coalesce_rows, timeout=0.1)
            if run is None:  # closed and fully drained
                return
            if not run:
                continue
            with self._state_lock:
                self._in_flight = run
            try:
                self._apply(run)
            finally:
                with self._state_lock:
                    self._in_flight = []

    def _apply(self, run: list[UpdateTicket]) -> None:
        self._coalesced_runs += 1
        operation = run[0].operation
        if self._degraded is not None:
            error = StreamError(
                "maintenance loop is degraded after a mid-update fault "
                f"({self._degraded}); predictions keep serving the last "
                "published model, updates are refused",
                http_status=503,
            )
            self._failed_updates += len(run)
            for ticket in run:
                ticket._fail(error)
            return
        chunk = (
            run[0].rows
            if len(run) == 1
            else np.concatenate([t.rows for t in run])
        )
        started = time.monotonic()
        try:
            if operation == "insert":
                report = self.maintainer.insert(chunk)
            else:
                report = self.maintainer.delete(chunk)
        except Exception as exc:  # noqa: BLE001 - forwarded to every producer
            self._failed_updates += len(run)
            if not self._consistent():
                self._degraded = f"{type(exc).__name__}: {exc}"
            error = exc if isinstance(exc, StreamError) else StreamError(
                f"{operation} of {len(chunk)} rows failed: {exc}",
                http_status=500,
            )
            for ticket in run:
                ticket._fail(error)
            self._trace_run(operation, run, len(chunk), started, error=error)
            return
        version = self._published_version()
        self._applied_updates += len(run)
        self._applied_rows += len(chunk)
        if report.finalize.rebuilds > 0:
            self._rebuild_updates += 1
        else:
            self._patch_updates += 1
        for ticket in run:
            ticket._resolve(report, version)
        self._trace_run(operation, run, len(chunk), started, report=report)

    def _consistent(self) -> bool:
        """The maintainer's stores still agree with its logical row count."""
        try:
            return self.maintainer.stored_rows() == self.maintainer.n_rows
        except ReproError:  # skeleton gone entirely — definitely not healthy
            return False

    def _published_version(self) -> int:
        """Version the maintainer's listener chain just published (if any)."""
        return self.registry.version if self.registry is not None else 0

    def _trace_run(
        self, operation, run, rows, started, report=None, error=None
    ) -> None:
        if self._stream_span is None:
            return
        span = self.tracer.worker_span(
            "maintain",
            operation=operation,
            chunks=len(run),
            rows=int(rows),
            seconds=round(time.monotonic() - started, 6),
        )
        if report is not None:
            span.set(
                rebuilds=report.finalize.rebuilds,
                version=run[0].version,
            )
            span.status = "ok"
        else:
            span.set(error=str(error))
            span.status = "error"
        self._stream_span.children.append(span)

    # -- inspection -----------------------------------------------------------

    @property
    def degraded(self) -> str | None:
        """The fault that degraded the loop, or ``None`` while healthy."""
        return self._degraded

    def in_flight(self) -> tuple[int, float]:
        """``(chunks, oldest_age_s)`` of the run being applied right now."""
        with self._state_lock:
            if not self._in_flight:
                return 0, 0.0
            oldest = min(t.enqueued for t in self._in_flight)
            return len(self._in_flight), max(0.0, time.monotonic() - oldest)

    def staleness(self) -> tuple[int, float]:
        """``(pending_updates, staleness_s)`` — queue plus in-flight.

        ``staleness_s`` is the age of the oldest accepted-but-unapplied
        update; 0 when the served model is fully caught up.
        """
        chunks, age = self.in_flight()
        return (
            chunks + self.queue.pending_chunks(),
            max(age, self.queue.oldest_age()),
        )

    def stats(self) -> dict:
        pending_updates, staleness_s = self.staleness()
        return {
            "applied_updates": self._applied_updates,
            "applied_rows": self._applied_rows,
            "patch_updates": self._patch_updates,
            "rebuild_updates": self._rebuild_updates,
            "failed_updates": self._failed_updates,
            "coalesced_runs": self._coalesced_runs,
            "pending_updates": pending_updates,
            "staleness_s": round(staleness_s, 6),
            "degraded": self._degraded,
            "n_rows": self.maintainer.n_rows,
        }
