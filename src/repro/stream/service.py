"""The streaming service: the closed update→maintain→publish→serve loop.

:class:`StreamService` composes the four pieces this package exists for:

* an :class:`~repro.stream.IngestQueue` accepting insert/delete
  micro-batches with row-bounded buffering and 429 backpressure;
* a :class:`~repro.stream.MaintenanceLoop` draining it into the
  maintainer (paper §4's :class:`~repro.core.IncrementalBoat`, or a
  :class:`~repro.stream.RebuildMaintainer` for methods without
  incremental support);
* a :class:`~repro.serve.ModelRegistry` wired via
  :meth:`~repro.serve.ModelRegistry.follow`, so every applied update
  publishes the new *exact* tree atomically — readers never see a torn
  tree, and each served batch names the version that served it;
* the existing :class:`~repro.serve.RequestBatcher` coalescing
  prediction traffic against the registry.

The staleness SLO this service reports is defined as: **staleness_s** is
the age of the oldest accepted-but-not-yet-applied update (0 when caught
up), and **pending_updates** is how many accepted micro-batches the
served model is behind.  Both are in :meth:`stats`, next to the
batcher's p50/p99 prediction latency.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..config import BoatConfig, SplitConfig
from ..core import IncrementalBoat
from ..exceptions import StreamError
from ..observability import NULL_TRACER, NullTracer, Tracer
from ..serve import ModelRegistry, RequestBatcher, ServeConfig
from ..splits.methods import ImpuritySplitSelection
from ..storage import Schema, Table
from .ingest import IngestQueue, UpdateTicket
from .maintain import MaintenanceLoop


@dataclass(frozen=True)
class StreamConfig:
    """Knobs of the streaming loop (freshness/throughput trade-offs).

    Attributes:
        queue_rows: maximum buffered update *rows*; beyond it
            :meth:`StreamService.submit_update` raises the backpressure
            :class:`StreamError` (HTTP 429).
        max_chunk_rows: largest single micro-batch accepted (413 beyond).
        coalesce_rows: the maintenance loop concatenates consecutive
            same-operation chunks up to this many rows per apply.
        staleness_slo_s: advertised staleness objective, echoed in
            :meth:`StreamService.stats` so dashboards and the soak
            harness agree on the target.
        serve: the prediction-side :class:`~repro.serve.ServeConfig`.
    """

    queue_rows: int = 1 << 18
    max_chunk_rows: int = 65536
    coalesce_rows: int = 65536
    staleness_slo_s: float = 5.0
    serve: ServeConfig = field(default_factory=ServeConfig)

    def __post_init__(self) -> None:
        if self.coalesce_rows < 1:
            raise ValueError("coalesce_rows must be >= 1")
        if self.staleness_slo_s <= 0:
            raise ValueError("staleness_slo_s must be positive")


class StreamService:
    """One live online-learning loop around a maintainer."""

    def __init__(
        self,
        maintainer,
        config: StreamConfig | None = None,
        tracer: Tracer | NullTracer | None = None,
    ):
        self.maintainer = maintainer
        self.config = config or StreamConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.registry = ModelRegistry(tracer=self.tracer)
        self.queue = IngestQueue(
            maintainer.schema,
            queue_rows=self.config.queue_rows,
            max_chunk_rows=self.config.max_chunk_rows,
        )
        self.loop = MaintenanceLoop(
            maintainer,
            self.queue,
            registry=self.registry,
            coalesce_rows=self.config.coalesce_rows,
            tracer=self.tracer,
        )
        self.batcher = RequestBatcher(
            self.registry, self.config.serve, tracer=self.tracer
        )
        self._started = time.monotonic()
        self._running = False

    # -- construction ---------------------------------------------------------

    @classmethod
    def build(
        cls,
        table: Table,
        method: ImpuritySplitSelection,
        split_config: SplitConfig | None = None,
        boat_config: BoatConfig | None = None,
        spill_dir: str | None = None,
        config: StreamConfig | None = None,
        tracer: Tracer | NullTracer | None = None,
    ) -> "StreamService":
        """Initial two-scan build, then wrap the maintainer in a service."""
        maintainer = IncrementalBoat.build(
            table, method, split_config, boat_config, spill_dir, tracer=tracer
        )
        return cls(maintainer, config, tracer=tracer)

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "StreamService":
        # follow() publishes the current tree now (version 1) and hooks
        # every future update; ordered before the loop starts so no
        # update can finalize unpublished.
        self.registry.follow(self.maintainer)
        self.loop.start()
        self.batcher.start()
        self._started = time.monotonic()
        self._running = True
        return self

    def close(self, drain: bool = True) -> None:
        """Stop ingest, drain (or drop) pending updates, stop serving.

        With ``drain=True`` (default) every accepted update is applied
        and published before shutdown completes — accepted means
        applied, even across a shutdown.  ``drain=False`` fails pending
        tickets with a 503 :class:`StreamError` instead.
        """
        self._running = False
        if not drain:
            while True:
                run = self.queue.pop_run(self.config.coalesce_rows, timeout=0)
                if not run:
                    break
                for ticket in run:
                    ticket._fail(StreamError(
                        "service shut down before this update was applied",
                        http_status=503,
                    ))
        self.loop.close()  # closes the queue, drains, joins the thread
        self.batcher.close()

    def __enter__(self) -> "StreamService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- the update side ------------------------------------------------------

    def submit_update(self, operation: str, chunk: np.ndarray) -> UpdateTicket:
        """Enqueue one validated micro-batch; returns immediately."""
        if not self._running:
            raise StreamError(
                "stream service is not running", http_status=503
            )
        return self.queue.submit(operation, chunk)

    def update(
        self, operation: str, chunk: np.ndarray, timeout: float | None = 30.0
    ):
        """Synchronous submit-and-wait; returns the update report."""
        return self.submit_update(operation, chunk).result(timeout)

    def drain(self, timeout: float | None = 30.0) -> None:
        """Block until every accepted update has been applied."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            pending, _ = self.loop.staleness()
            if pending == 0:
                return
            if deadline is not None and time.monotonic() > deadline:
                raise StreamError(
                    f"drain timed out with {pending} update(s) pending",
                    http_status=504,
                )
            time.sleep(0.005)

    # -- the predict side -----------------------------------------------------

    def submit_predict(self, rows, proba=None, timeout=None):
        """Enqueue a prediction batch (see :meth:`RequestBatcher.submit`)."""
        return self.batcher.submit(rows, proba, timeout)

    def predict(self, rows, proba=None, timeout=None) -> np.ndarray:
        return self.batcher.predict(rows, proba, timeout)

    # -- inspection -----------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self.maintainer.schema

    @property
    def version(self) -> int:
        """Version of the live published model."""
        return self.registry.version

    def stats(self) -> dict:
        """One merged snapshot of the whole loop, SLO fields included."""
        pending_updates, staleness_s = self.loop.staleness()
        return {
            "model_version": self.registry.version,
            "n_rows": self.maintainer.n_rows,
            "uptime_s": round(time.monotonic() - self._started, 3),
            "staleness_s": round(staleness_s, 6),
            "staleness_slo_s": self.config.staleness_slo_s,
            "pending_updates": pending_updates,
            "queue": self.queue.stats(),
            "maintain": self.loop.stats(),
            "serve": self.batcher.stats(),
        }
