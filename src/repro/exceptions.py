"""Exception hierarchy for the ``repro`` library.

All library-raised errors derive from :class:`ReproError`, so callers can
catch one base class at an API boundary.  Subclasses exist per subsystem so
tests can assert on the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SchemaError(ReproError):
    """A schema is malformed, or a record does not match its schema."""


class StorageError(ReproError):
    """An on-disk table or spill file is corrupt or used incorrectly."""


class TableClosedError(StorageError):
    """An operation was attempted on a table that has been closed."""


class SplitSelectionError(ReproError):
    """A split selection method was asked something it cannot answer."""


class TreeStructureError(ReproError):
    """A decision tree is structurally invalid (bad links, labels, ...)."""


class CoarseCriterionFailure(ReproError):
    """A coarse splitting criterion was detected to be incorrect.

    Raised internally during BOAT's cleanup phase when the Lemma 3.1 check
    (or the exact categorical check) signals that the global impurity
    minimum may lie outside what the coarse criterion allows.  The driver
    catches it and rebuilds the affected subtree; it escaping to user code
    is a bug.
    """

    def __init__(self, node_id: int, reason: str):
        super().__init__(f"coarse criterion failed at node {node_id}: {reason}")
        self.node_id = node_id
        self.reason = reason


class RecoveryError(ReproError):
    """A checkpoint directory is unusable for resuming a build.

    Raised by :mod:`repro.recovery` when a resume is attempted against a
    missing, incomplete, or mismatched checkpoint — e.g. the table,
    schema, or build configuration differs from the one the checkpoint
    was written under, or the build already completed.
    """


class DatagenError(ReproError):
    """Bad parameters passed to the synthetic data generator."""


class ServeError(ReproError):
    """A serving-layer request could not be completed.

    Raised by :mod:`repro.serve` for request timeouts, backpressure
    rejections (the request queue is full), malformed serving requests,
    and predictions demanded before any model was published.  The
    ``http_status`` hint lets the HTTP front end map failure modes to
    status codes (429 backpressure, 504 timeout, ...) without string
    matching.
    """

    def __init__(self, message: str, http_status: int = 400):
        super().__init__(message)
        self.http_status = http_status


class StreamError(ReproError):
    """A streaming ingest or maintenance operation could not be completed.

    Raised by :mod:`repro.stream` for backpressure rejections (the ingest
    queue is at capacity, HTTP 429), poisoned micro-batches (schema
    mismatch, bad label — rejected at submit time so the queue keeps
    draining), updates submitted after shutdown (503), and updates
    refused while the maintenance loop is degraded after a mid-apply
    fault (503).  Like :class:`ServeError`, the ``http_status`` hint
    lets the streaming front end map failure modes without string
    matching.
    """

    def __init__(self, message: str, http_status: int = 400):
        super().__init__(message)
        self.http_status = http_status


class BenchmarkError(ReproError):
    """A benchmark harness was configured inconsistently."""


class ShardError(ReproError):
    """A sharded build could not complete.

    Raised by :mod:`repro.shard` when a shard is unreachable (dead TCP
    server, exhausted retries), a shard worker fails mid-scan, or a
    worker's result is inconsistent with the coordinator's view (row
    counts drifting between requests).  Shard *storage* corruption — a
    manifest whose schema digest does not match its shard files —
    surfaces as :class:`StorageError` like every other storage fault.
    """
