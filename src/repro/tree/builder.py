"""The reference greedy top-down tree builder (Figure 1 of the paper).

``TDTree`` applied to an in-memory family: select a split with the given
CL, partition, recurse.  This builder *defines* the target tree — BOAT's
exactness guarantee is "produce exactly what this builder produces on the
full database" — so it is deliberately simple, deterministic, and shares
every candidate-evaluation code path with BOAT (see
:mod:`repro.splits.impurity`).

Construction order is preorder (node ids increase root → left subtree →
right subtree), but tree equality never depends on ids.
"""

from __future__ import annotations

import numpy as np

from ..config import SplitConfig
from ..kernels import DEFAULT_KERNELS, KernelBackend
from ..splits.base import SplitSelectionMethod
from ..storage import CLASS_COLUMN, Schema
from .model import DecisionTree, Node


def class_counts(
    family: np.ndarray,
    n_classes: int,
    kernels: KernelBackend = DEFAULT_KERNELS,
) -> np.ndarray:
    """Integer class-count vector of a family array."""
    return kernels.class_histogram(family[CLASS_COLUMN], n_classes)


def _method_kernels(method: SplitSelectionMethod) -> KernelBackend:
    """The kernel backend a split selection method carries (numpy default)."""
    return getattr(method, "kernels", DEFAULT_KERNELS)


def build_reference_tree(
    family: np.ndarray,
    schema: Schema,
    method: SplitSelectionMethod,
    config: SplitConfig | None = None,
) -> DecisionTree:
    """Grow the greedy tree for an in-memory family.

    Args:
        family: the full training data as one structured array.
        schema: its schema.
        method: the split selection method CL.
        config: stopping rules (defaults to :class:`SplitConfig`()).
    """
    config = config or SplitConfig()
    kernels = _method_kernels(method)
    root = Node(0, 0, class_counts(family, schema.n_classes, kernels))
    tree = DecisionTree(schema, root)
    grow_subtree(tree, root, family, method, config)
    return tree


def grow_subtree(
    tree: DecisionTree,
    node: Node,
    family: np.ndarray,
    method: SplitSelectionMethod,
    config: SplitConfig,
) -> None:
    """Recursively grow the subtree rooted at ``node`` from its family.

    ``node.class_counts`` must already describe ``family``.  Also used by
    BOAT to finish frontier nodes and rebuild discarded subtrees in place.
    """
    if config.max_depth is not None and node.depth >= config.max_depth:
        return
    decision = method.choose_split(family, tree.schema, config)
    if decision is None:
        return
    kernels = _method_kernels(method)
    go_left = decision.split.evaluate(family, tree.schema)
    left_family = family[go_left]
    right_family = family[~go_left]
    left = tree.new_node(
        node.depth + 1,
        class_counts(left_family, tree.schema.n_classes, kernels),
        node,
    )
    right = tree.new_node(
        node.depth + 1,
        class_counts(right_family, tree.schema.n_classes, kernels),
        node,
    )
    node.make_internal(decision.split, left, right)
    grow_subtree(tree, left, left_family, method, config)
    grow_subtree(tree, right, right_family, method, config)
