"""The binary decision tree model.

A :class:`DecisionTree` is a classifier: every internal node carries a
splitting criterion (:class:`~repro.splits.base.Split`; the predicate
routes left on true), every leaf a class label.  Nodes also carry the
family statistics (size, class counts) the algorithms computed, which the
comparison and maintenance code relies on.

Trees are built by algorithms in :mod:`repro.tree.builder`,
:mod:`repro.core` and :mod:`repro.rainforest`; user code mostly calls
:meth:`DecisionTree.predict` and the inspection helpers.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from ..exceptions import TreeStructureError
from ..splits.base import Split, majority_label
from ..storage import Schema


class Node:
    """One node of a binary decision tree.

    A node is a leaf iff ``split is None``; internal nodes have exactly two
    children.  ``class_counts`` always reflects the node's family.
    """

    __slots__ = (
        "node_id",
        "depth",
        "split",
        "left",
        "right",
        "parent",
        "class_counts",
        "extra",
    )

    def __init__(
        self,
        node_id: int,
        depth: int,
        class_counts: np.ndarray,
        parent: "Node | None" = None,
    ):
        self.node_id = node_id
        self.depth = depth
        self.split: Split | None = None
        self.left: Node | None = None
        self.right: Node | None = None
        self.parent = parent
        self.class_counts = np.asarray(class_counts, dtype=np.int64)
        #: Scratch slot for algorithm-specific per-node state (BOAT uses it).
        self.extra: object | None = None

    @property
    def is_leaf(self) -> bool:
        return self.split is None

    @property
    def n_tuples(self) -> int:
        return int(self.class_counts.sum())

    @property
    def label(self) -> int:
        """Deterministic majority label (meaningful for any node)."""
        return majority_label(self.class_counts)

    def children(self) -> tuple["Node", "Node"]:
        if self.left is None or self.right is None:
            raise TreeStructureError(f"node {self.node_id} has no children")
        return self.left, self.right

    def make_internal(self, split: Split, left: "Node", right: "Node") -> None:
        """Turn this node into an internal node with the given split."""
        self.split = split
        self.left = left
        self.right = right
        left.parent = self
        right.parent = self

    def make_leaf(self) -> None:
        """Turn this node (back) into a leaf, dropping any subtree."""
        self.split = None
        self.left = None
        self.right = None

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else f"split={self.split}"
        return f"Node(id={self.node_id}, depth={self.depth}, {kind}, n={self.n_tuples})"


class DecisionTree:
    """A binary decision tree classifier over a fixed schema."""

    def __init__(self, schema: Schema, root: Node):
        self._schema = schema
        self._root = root
        self._next_id = 1 + max(n.node_id for n in _preorder(root))

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def root(self) -> Node:
        return self._root

    # -- construction helpers ------------------------------------------------

    def allocate_id(self) -> int:
        """A fresh node id (monotone; never reused within this tree)."""
        nid = self._next_id
        self._next_id += 1
        return nid

    def new_node(
        self, depth: int, class_counts: np.ndarray, parent: Node | None = None
    ) -> Node:
        return Node(self.allocate_id(), depth, class_counts, parent)

    # -- traversal -------------------------------------------------------------

    def nodes(self) -> Iterator[Node]:
        """All nodes, preorder (parents before children, left before right)."""
        return _preorder(self._root)

    def leaves(self) -> Iterator[Node]:
        return (n for n in self.nodes() if n.is_leaf)

    def internal_nodes(self) -> Iterator[Node]:
        return (n for n in self.nodes() if not n.is_leaf)

    @property
    def n_nodes(self) -> int:
        return sum(1 for _ in self.nodes())

    @property
    def n_leaves(self) -> int:
        return sum(1 for _ in self.leaves())

    @property
    def depth(self) -> int:
        return max((n.depth for n in self.leaves()), default=0)

    def node_by_id(self, node_id: int) -> Node:
        for node in self.nodes():
            if node.node_id == node_id:
                return node
        raise TreeStructureError(f"no node with id {node_id}")

    # -- classification ----------------------------------------------------------

    def compile(self):
        """Flatten into a :class:`~repro.serve.CompiledPredictor`.

        The compiled form routes whole batches iteratively over contiguous
        arrays — no Python-object traversal — and is what the serving
        layer publishes.  It is a snapshot: recompile after mutating the
        tree.
        """
        from ..serve.compiled import CompiledPredictor

        return CompiledPredictor.from_tree(self)

    def route(self, batch: np.ndarray) -> np.ndarray:
        """Leaf node id for each record of ``batch``.

        Routed through the compiled array kernel
        (:class:`~repro.serve.CompiledPredictor`) — the same kernel the
        serving layer uses, so the level-wise cleanup scans and live
        inference exercise one implementation.  :meth:`route_recursive`
        keeps the Node-walking reference path; the two agree exactly.
        """
        return self.compile().route(batch)

    def route_recursive(self, batch: np.ndarray) -> np.ndarray:
        """Reference implementation of :meth:`route` (recursive Node walk)."""
        out = np.empty(len(batch), dtype=np.int64)
        self._route_into(self._root, batch, np.arange(len(batch)), out)
        return out

    def _route_into(
        self, node: Node, batch: np.ndarray, indices: np.ndarray, out: np.ndarray
    ) -> None:
        if node.is_leaf:
            out[indices] = node.node_id
            return
        go_left = node.split.evaluate(batch[indices], self._schema)
        left, right = node.children()
        self._route_into(left, batch, indices[go_left], out)
        self._route_into(right, batch, indices[~go_left], out)

    def predict(self, batch: np.ndarray) -> np.ndarray:
        """Predicted class labels for a batch (vectorized)."""
        labels = np.empty(len(batch), dtype=np.int32)
        self._predict_into(self._root, batch, np.arange(len(batch)), labels)
        return labels

    def _predict_into(
        self, node: Node, batch: np.ndarray, indices: np.ndarray, out: np.ndarray
    ) -> None:
        if indices.size == 0:
            return
        if node.is_leaf:
            out[indices] = node.label
            return
        go_left = node.split.evaluate(batch[indices], self._schema)
        left, right = node.children()
        self._predict_into(left, batch, indices[go_left], out)
        self._predict_into(right, batch, indices[~go_left], out)

    def predict_proba(self, batch: np.ndarray) -> np.ndarray:
        """Class-probability estimates from leaf training distributions.

        Returns an (n, k) float64 array; rows for tuples reaching an
        empty leaf (possible after aggressive pruning) fall back to the
        uniform distribution.
        """
        k = len(self._root.class_counts)
        out = np.empty((len(batch), k), dtype=np.float64)
        self._proba_into(self._root, batch, np.arange(len(batch)), out)
        return out

    def _proba_into(
        self, node: Node, batch: np.ndarray, indices: np.ndarray, out: np.ndarray
    ) -> None:
        if indices.size == 0:
            return
        if node.is_leaf:
            total = node.class_counts.sum()
            if total > 0:
                out[indices] = node.class_counts / total
            else:
                out[indices] = 1.0 / len(node.class_counts)
            return
        go_left = node.split.evaluate(batch[indices], self._schema)
        left, right = node.children()
        self._proba_into(left, batch, indices[go_left], out)
        self._proba_into(right, batch, indices[~go_left], out)

    def misclassification_rate(self, batch: np.ndarray) -> float:
        """Fraction of ``batch`` whose predicted label differs from its label."""
        from ..storage import CLASS_COLUMN

        if len(batch) == 0:
            return 0.0
        return float(np.mean(self.predict(batch) != batch[CLASS_COLUMN]))

    # -- validation ----------------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`TreeStructureError` on structural inconsistencies."""
        seen: set[int] = set()
        for node in self.nodes():
            if node.node_id in seen:
                raise TreeStructureError(f"duplicate node id {node.node_id}")
            seen.add(node.node_id)
            if node.is_leaf:
                if node.left is not None or node.right is not None:
                    raise TreeStructureError(
                        f"leaf {node.node_id} has children"
                    )
            else:
                left, right = node.children()
                for child in (left, right):
                    if child.depth != node.depth + 1:
                        raise TreeStructureError(
                            f"node {child.node_id} depth {child.depth} != "
                            f"parent depth {node.depth} + 1"
                        )
                    if child.parent is not node:
                        raise TreeStructureError(
                            f"node {child.node_id} has wrong parent link"
                        )
                index = node.split.attribute_index
                if not 0 <= index < self._schema.n_attributes:
                    raise TreeStructureError(
                        f"node {node.node_id} splits on bad attribute {index}"
                    )

    def map_nodes(self, fn: Callable[[Node], None]) -> None:
        """Apply ``fn`` to every node, preorder."""
        for node in self.nodes():
            fn(node)


def _preorder(root: Node) -> Iterator[Node]:
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        if not node.is_leaf:
            stack.append(node.right)
            stack.append(node.left)
