"""Descriptive statistics over fitted trees.

Inspection helpers for notebooks, reports and the drift-analysis story:
which attributes the tree actually uses, how deep its leaves sit, and
how pure they are.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from ..storage import Schema
from .model import DecisionTree


@dataclass
class TreeStatistics:
    """Aggregate description of one tree.

    Attributes:
        n_nodes / n_leaves / depth: structural counts.
        attribute_usage: splitting-attribute name -> number of internal
            nodes splitting on it.
        attribute_coverage: attribute name -> fraction of training tuples
            that pass through a split on it (weighted usage).
        leaf_depth_histogram: depth -> number of leaves at that depth.
        mean_leaf_purity: tuple-weighted mean of max(class fraction) over
            leaves.
        label_distribution: per-class training-tuple counts at the root.
    """

    n_nodes: int
    n_leaves: int
    depth: int
    attribute_usage: dict[str, int] = field(default_factory=dict)
    attribute_coverage: dict[str, float] = field(default_factory=dict)
    leaf_depth_histogram: dict[int, int] = field(default_factory=dict)
    mean_leaf_purity: float = 0.0
    label_distribution: tuple[int, ...] = ()

    def format(self) -> str:
        lines = [
            f"nodes={self.n_nodes} leaves={self.n_leaves} depth={self.depth}",
            f"mean leaf purity: {self.mean_leaf_purity:.3f}",
            "attribute usage (splits / tuple coverage):",
        ]
        for name, count in sorted(
            self.attribute_usage.items(), key=lambda kv: -kv[1]
        ):
            coverage = self.attribute_coverage.get(name, 0.0)
            lines.append(f"  {name:<16} {count:>4}  {coverage:>6.1%}")
        histogram = ", ".join(
            f"{d}:{c}" for d, c in sorted(self.leaf_depth_histogram.items())
        )
        lines.append(f"leaf depths: {histogram}")
        return "\n".join(lines)


def tree_statistics(tree: DecisionTree) -> TreeStatistics:
    """Compute :class:`TreeStatistics` for a fitted tree."""
    schema: Schema = tree.schema
    usage: Counter[str] = Counter()
    coverage: Counter[str] = Counter()
    leaf_depths: Counter[int] = Counter()
    purity_weighted = 0.0
    total = max(tree.root.n_tuples, 1)
    for node in tree.nodes():
        if node.is_leaf:
            leaf_depths[node.depth] += 1
            n = node.n_tuples
            if n:
                purity_weighted += n * (node.class_counts.max() / n)
            continue
        name = schema[node.split.attribute_index].name
        usage[name] += 1
        coverage[name] += node.n_tuples
    return TreeStatistics(
        n_nodes=tree.n_nodes,
        n_leaves=tree.n_leaves,
        depth=tree.depth,
        attribute_usage=dict(usage),
        attribute_coverage={k: v / total for k, v in coverage.items()},
        leaf_depth_histogram=dict(leaf_depths),
        mean_leaf_purity=purity_weighted / total,
        label_distribution=tuple(int(c) for c in tree.root.class_counts),
    )


def attribute_importances(tree: DecisionTree) -> dict[str, float]:
    """Impurity-decrease attribute importances (gini-style), normalized.

    Importance of an attribute = sum over its splits of
    ``n_node * imp(node) - n_left * imp(left) - n_right * imp(right)``
    using the gini of the stored class counts, normalized to sum to 1
    (all-zero when the tree is a single leaf).
    """

    def gini(counts: np.ndarray) -> float:
        n = counts.sum()
        if n == 0:
            return 0.0
        p = counts / n
        return float(1.0 - (p * p).sum())

    schema = tree.schema
    scores: Counter[str] = Counter()
    for node in tree.internal_nodes():
        left, right = node.children()
        decrease = node.n_tuples * gini(node.class_counts) - (
            left.n_tuples * gini(left.class_counts)
            + right.n_tuples * gini(right.class_counts)
        )
        scores[schema[node.split.attribute_index].name] += max(decrease, 0.0)
    total = sum(scores.values())
    if total <= 0:
        return {}
    return {name: value / total for name, value in scores.items()}
