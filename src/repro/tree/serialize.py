"""Tree (de)serialization to plain dicts / JSON.

Numeric split points are serialized through ``float.hex`` so a round trip
preserves exact bit patterns — tree equality (which compares split points
exactly) survives serialization.
"""

from __future__ import annotations

import json

import numpy as np

from ..exceptions import SchemaError, TreeStructureError
from ..splits.base import CategoricalSplit, NumericSplit
from ..storage import Schema
from .model import DecisionTree, Node


def tree_to_dict(tree: DecisionTree) -> dict:
    """Plain-dict form of a tree (schema included)."""
    return {
        "schema": tree.schema.to_dict(),
        "root": _node_to_dict(tree.root),
    }


def _node_to_dict(node: Node) -> dict:
    data: dict = {
        "id": node.node_id,
        "depth": node.depth,
        "class_counts": [int(c) for c in node.class_counts],
    }
    if node.is_leaf:
        data["leaf"] = True
        return data
    split = node.split
    if isinstance(split, NumericSplit):
        data["split"] = {
            "kind": "numeric",
            "attribute_index": split.attribute_index,
            "value_hex": float(split.value).hex(),
        }
    elif isinstance(split, CategoricalSplit):
        data["split"] = {
            "kind": "categorical",
            "attribute_index": split.attribute_index,
            "subset": sorted(split.subset),
        }
    else:  # pragma: no cover - future split kinds
        raise TreeStructureError(f"cannot serialize split {split!r}")
    data["left"] = _node_to_dict(node.left)
    data["right"] = _node_to_dict(node.right)
    return data


def tree_from_dict(data: dict) -> DecisionTree:
    """Inverse of :func:`tree_to_dict`."""
    try:
        schema = Schema.from_dict(data["schema"])
        root = _node_from_dict(data["root"], None)
    except (KeyError, TypeError, ValueError, SchemaError) as exc:
        raise TreeStructureError(f"malformed tree dict: {exc}") from exc
    tree = DecisionTree(schema, root)
    tree.validate()
    return tree


def _node_from_dict(data: dict, parent: Node | None) -> Node:
    node = Node(
        int(data["id"]),
        int(data["depth"]),
        np.asarray(data["class_counts"], dtype=np.int64),
        parent,
    )
    if data.get("leaf"):
        return node
    split_data = data["split"]
    if split_data["kind"] == "numeric":
        split = NumericSplit(
            int(split_data["attribute_index"]),
            float.fromhex(split_data["value_hex"]),
        )
    elif split_data["kind"] == "categorical":
        split = CategoricalSplit(
            int(split_data["attribute_index"]),
            frozenset(int(c) for c in split_data["subset"]),
        )
    else:
        raise TreeStructureError(f"unknown split kind {split_data['kind']!r}")
    left = _node_from_dict(data["left"], node)
    right = _node_from_dict(data["right"], node)
    node.make_internal(split, left, right)
    return node


def tree_to_json(tree: DecisionTree, indent: int | None = None) -> str:
    return json.dumps(tree_to_dict(tree), indent=indent, sort_keys=True)


def tree_from_json(text: str) -> DecisionTree:
    try:
        return tree_from_dict(json.loads(text))
    except json.JSONDecodeError as exc:
        raise TreeStructureError(f"malformed tree JSON: {exc}") from exc
