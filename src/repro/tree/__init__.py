"""Decision tree model, reference builder, comparison, rendering, serialization."""

from .builder import build_reference_tree, class_counts, grow_subtree
from .compare import (
    TreeDifference,
    count_common_prefix_nodes,
    tree_diff,
    trees_equal,
    trees_equivalent,
)
from .model import DecisionTree, Node
from .printing import render_tree, tree_summary, tree_to_dot
from .pruning import (
    PruningStep,
    cost_complexity_path,
    cost_complexity_prune,
    holdout_select_alpha,
    reduced_error_prune,
)
from .serialize import tree_from_dict, tree_from_json, tree_to_dict, tree_to_json
from .statistics import TreeStatistics, attribute_importances, tree_statistics

__all__ = [
    "DecisionTree",
    "Node",
    "PruningStep",
    "TreeDifference",
    "TreeStatistics",
    "attribute_importances",
    "cost_complexity_path",
    "cost_complexity_prune",
    "holdout_select_alpha",
    "reduced_error_prune",
    "build_reference_tree",
    "class_counts",
    "count_common_prefix_nodes",
    "grow_subtree",
    "render_tree",
    "tree_diff",
    "tree_from_dict",
    "tree_from_json",
    "tree_statistics",
    "tree_summary",
    "tree_to_dict",
    "tree_to_dot",
    "tree_to_json",
    "trees_equal",
    "trees_equivalent",
]
