"""Human-readable tree rendering."""

from __future__ import annotations

from .model import DecisionTree, Node


def render_tree(tree: DecisionTree, max_depth: int | None = None) -> str:
    """ASCII rendering of a tree, one node per line.

    Internal nodes show their splitting criterion, leaves their label and
    family class counts.  ``max_depth`` truncates deep subtrees with an
    ellipsis line.
    """
    lines: list[str] = []
    _render(tree, tree.root, "", "", lines, max_depth)
    return "\n".join(lines)


def _render(
    tree: DecisionTree,
    node: Node,
    prefix: str,
    child_prefix: str,
    lines: list[str],
    max_depth: int | None,
) -> None:
    if node.is_leaf:
        counts = ",".join(str(int(c)) for c in node.class_counts)
        lines.append(f"{prefix}leaf label={node.label} counts=[{counts}]")
        return
    if max_depth is not None and node.depth >= max_depth:
        lines.append(f"{prefix}... ({_subtree_size(node)} more nodes)")
        return
    lines.append(f"{prefix}{node.split.describe(tree.schema)} (n={node.n_tuples})")
    left, right = node.children()
    _render(tree, left, child_prefix + "|-T ", child_prefix + "|   ", lines, max_depth)
    _render(tree, right, child_prefix + "`-F ", child_prefix + "    ", lines, max_depth)


def _subtree_size(node: Node) -> int:
    if node.is_leaf:
        return 1
    return 1 + _subtree_size(node.left) + _subtree_size(node.right)


def tree_summary(tree: DecisionTree) -> str:
    """One-line summary: node/leaf counts and depth."""
    return (
        f"DecisionTree(nodes={tree.n_nodes}, leaves={tree.n_leaves}, "
        f"depth={tree.depth}, n={tree.root.n_tuples})"
    )


def tree_to_dot(tree: DecisionTree, max_depth: int | None = None) -> str:
    """Graphviz DOT rendering of a tree.

    Internal nodes show their splitting criterion, leaves their label and
    class counts; left edges are labeled "true".  ``max_depth`` truncates
    deep subtrees into a summary node.
    """
    lines = ["digraph decision_tree {", '  node [shape=box, fontname="monospace"];']
    _dot_node(tree, tree.root, lines, max_depth)
    lines.append("}")
    return "\n".join(lines)


def _dot_node(
    tree: DecisionTree, node: Node, lines: list[str], max_depth: int | None
) -> None:
    if node.is_leaf:
        counts = ",".join(str(int(c)) for c in node.class_counts)
        lines.append(
            f'  n{node.node_id} [label="label={node.label}\\n[{counts}]", '
            f"style=filled, fillcolor=lightgray];"
        )
        return
    if max_depth is not None and node.depth >= max_depth:
        lines.append(
            f'  n{node.node_id} [label="... {_subtree_size(node)} nodes", '
            f"style=dashed];"
        )
        return
    predicate = node.split.describe(tree.schema).replace('"', r"\"")
    lines.append(f'  n{node.node_id} [label="{predicate}\\nn={node.n_tuples}"];')
    left, right = node.children()
    for child, tag in ((left, "true"), (right, "false")):
        lines.append(f'  n{node.node_id} -> n{child.node_id} [label="{tag}"];')
    _dot_node(tree, left, lines, max_depth)
    _dot_node(tree, right, lines, max_depth)
