"""Pruning — the paper's "orthogonal issue", supplied for completeness.

BOAT covers the growth phase; §2 notes that how the tree is pruned is
orthogonal, and that the techniques also speed up cross-validation for
large datasets.  This module provides the two classical pruning methods
a downstream user expects:

* :func:`reduced_error_prune` — bottom-up pruning against a validation
  set: a subtree collapses to a leaf whenever the leaf misclassifies no
  more validation tuples than the subtree does.
* :func:`cost_complexity_path` / :func:`cost_complexity_prune` — CART's
  minimal cost-complexity pruning [BFOS84]: the nested sequence of
  subtrees indexed by the complexity parameter alpha, using the training
  counts stored in the nodes.

Both operate on copies; the input tree is never mutated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..storage import CLASS_COLUMN, Schema
from .model import DecisionTree, Node


def _copy_tree(tree: DecisionTree) -> DecisionTree:
    def copy_node(node: Node) -> Node:
        clone = Node(node.node_id, node.depth, node.class_counts.copy())
        if not node.is_leaf:
            clone.make_internal(node.split, copy_node(node.left), copy_node(node.right))
        return clone

    return DecisionTree(tree.schema, copy_node(tree.root))


# ---------------------------------------------------------------------------
# Reduced-error pruning
# ---------------------------------------------------------------------------


def reduced_error_prune(
    tree: DecisionTree, validation: np.ndarray
) -> DecisionTree:
    """Bottom-up pruning against a validation set.

    Returns a new tree in which every subtree whose majority-label leaf
    would misclassify no more validation tuples than the subtree does has
    been collapsed.  Ties prune (prefer the smaller tree).
    """
    pruned = _copy_tree(tree)
    labels = validation[CLASS_COLUMN]
    _rep_node(pruned, pruned.root, validation, labels)
    pruned.validate()
    return pruned


def _rep_node(
    tree: DecisionTree, node: Node, rows: np.ndarray, labels: np.ndarray
) -> int:
    """Returns the subtree's validation error count, pruning as it goes."""
    leaf_errors = int(np.sum(labels != node.label))
    if node.is_leaf:
        return leaf_errors
    go_left = node.split.evaluate(rows, tree.schema)
    subtree_errors = _rep_node(
        tree, node.left, rows[go_left], labels[go_left]
    ) + _rep_node(tree, node.right, rows[~go_left], labels[~go_left])
    if leaf_errors <= subtree_errors:
        node.make_leaf()
        return leaf_errors
    return subtree_errors


# ---------------------------------------------------------------------------
# Minimal cost-complexity pruning (CART)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PruningStep:
    """One step of the cost-complexity path.

    Attributes:
        alpha: the complexity parameter at which this tree is optimal.
        tree: the pruned tree.
        n_leaves: leaf count of ``tree``.
    """

    alpha: float
    tree: DecisionTree
    n_leaves: int


def _training_errors(node: Node) -> int:
    """Training misclassifications of the node as a leaf."""
    return int(node.class_counts.sum() - node.class_counts.max())


def _subtree_stats(node: Node) -> tuple[int, int]:
    """(subtree training errors, subtree leaf count)."""
    if node.is_leaf:
        return _training_errors(node), 1
    le, ll = _subtree_stats(node.left)
    re, rl = _subtree_stats(node.right)
    return le + re, ll + rl


def _weakest_link(node: Node) -> tuple[float, Node] | None:
    """The internal node with minimal g(t) = (R(t) - R(T_t)) / (|T_t| - 1)."""
    best: tuple[float, Node] | None = None
    stack = [node]
    while stack:
        current = stack.pop()
        if current.is_leaf:
            continue
        subtree_errors, leaves = _subtree_stats(current)
        g = (_training_errors(current) - subtree_errors) / (leaves - 1)
        if best is None or g < best[0]:
            best = (g, current)
        stack.append(current.left)
        stack.append(current.right)
    return best


def cost_complexity_path(tree: DecisionTree) -> list[PruningStep]:
    """The nested subtree sequence of minimal cost-complexity pruning.

    The first step is the unpruned tree at alpha = 0; the last is the
    root-leaf.  Alphas are normalized by the training-set size, matching
    the usual presentation of R(T) as a misclassification *rate*.
    """
    n = max(tree.root.n_tuples, 1)
    current = _copy_tree(tree)
    steps = [PruningStep(0.0, _copy_tree(current), current.n_leaves)]
    while not current.root.is_leaf:
        weakest = _weakest_link(current.root)
        assert weakest is not None
        g, node = weakest
        node.make_leaf()
        steps.append(PruningStep(g / n, _copy_tree(current), current.n_leaves))
    return steps


def cost_complexity_prune(tree: DecisionTree, alpha: float) -> DecisionTree:
    """The smallest subtree optimal at complexity parameter ``alpha``."""
    if alpha < 0:
        raise ValueError("alpha must be >= 0")
    chosen = None
    for step in cost_complexity_path(tree):
        if step.alpha <= alpha or math.isclose(step.alpha, alpha):
            chosen = step
        else:
            break
    assert chosen is not None  # the alpha=0 step always qualifies
    return chosen.tree


def holdout_select_alpha(
    tree: DecisionTree, validation: np.ndarray
) -> PruningStep:
    """Pick the path step with minimal validation error (ties -> smaller)."""
    best: tuple[float, int, PruningStep] | None = None
    for step in cost_complexity_path(tree):
        error = step.tree.misclassification_rate(validation)
        key = (error, step.n_leaves)
        if best is None or key < (best[0], best[1]):
            best = (error, step.n_leaves, step)
    assert best is not None
    return best[2]
