"""Structural tree comparison.

Tree equality is the paper's correctness criterion: BOAT (static or
incremental) must produce *exactly* the tree the reference builder grows
on the same data.  Two trees are equal iff their shapes coincide, every
corresponding internal node carries the same split (attribute + predicate,
with exact float equality for numeric split points — both sides compute
them from identical integer counts through identical code, see
:mod:`repro.splits.impurity`), and every corresponding leaf predicts the
same label.

:func:`tree_diff` reports the first difference found, for debugging and
for the drift-analysis story of §4 (telling the analyst *where* the tree
changed).
"""

from __future__ import annotations

from dataclasses import dataclass

from .model import DecisionTree, Node


@dataclass(frozen=True)
class TreeDifference:
    """The first structural difference between two trees.

    ``path`` is the root-to-node path as a string of ``L``/``R`` moves;
    the empty string denotes the root.
    """

    path: str
    reason: str

    def __str__(self) -> str:
        where = f"at path {self.path!r}" if self.path else "at the root"
        return f"{where}: {self.reason}"


def tree_diff(a: DecisionTree, b: DecisionTree) -> TreeDifference | None:
    """First difference between two trees, or ``None`` if equal."""
    if a.schema != b.schema:
        return TreeDifference("", "schemas differ")
    return _diff_nodes(a.root, b.root, "")


def _diff_nodes(a: Node, b: Node, path: str) -> TreeDifference | None:
    if a.is_leaf != b.is_leaf:
        kind_a = "leaf" if a.is_leaf else "internal"
        kind_b = "leaf" if b.is_leaf else "internal"
        return TreeDifference(path, f"node kinds differ ({kind_a} vs {kind_b})")
    if a.is_leaf:
        if a.label != b.label:
            return TreeDifference(
                path, f"leaf labels differ ({a.label} vs {b.label})"
            )
        return None
    if a.split != b.split:
        return TreeDifference(path, f"splits differ ({a.split} vs {b.split})")
    left = _diff_nodes(a.left, b.left, path + "L")
    if left is not None:
        return left
    return _diff_nodes(a.right, b.right, path + "R")


def trees_equal(a: DecisionTree, b: DecisionTree) -> bool:
    """Structural equality (see module docstring for the criterion)."""
    return tree_diff(a, b) is None


def trees_equivalent(
    a: DecisionTree, b: DecisionTree, rel_tol: float = 1e-9
) -> bool:
    """Structural equality with numeric split points compared to tolerance.

    The impurity-based algorithms are bit-exact and should use
    :func:`trees_equal`; QUEST derives thresholds from floating-point
    sums whose value depends on summation order, so its cross-algorithm
    guarantee is equality up to a relative tolerance.
    """
    if a.schema != b.schema:
        return False
    return _equivalent(a.root, b.root, rel_tol)


def _equivalent(a: Node, b: Node, rel_tol: float) -> bool:
    if a.is_leaf != b.is_leaf:
        return False
    if a.is_leaf:
        return a.label == b.label
    sa, sb = a.split, b.split
    if type(sa) is not type(sb) or sa.attribute_index != sb.attribute_index:
        return False
    if hasattr(sa, "subset"):
        if sa.subset != sb.subset:
            return False
    else:
        scale = max(abs(sa.value), abs(sb.value), 1.0)
        if abs(sa.value - sb.value) > rel_tol * scale:
            return False
    return _equivalent(a.left, b.left, rel_tol) and _equivalent(
        a.right, b.right, rel_tol
    )


def count_common_prefix_nodes(a: DecisionTree, b: DecisionTree) -> int:
    """Number of corresponding nodes with identical splits/labels.

    A similarity measure used by the instability experiment (Figure 12):
    unstable datasets make bootstrap trees diverge early, so the common
    prefix is small.
    """
    return _common_nodes(a.root, b.root)


def _common_nodes(a: Node, b: Node) -> int:
    if a.is_leaf or b.is_leaf:
        return 1 if a.is_leaf == b.is_leaf and a.label == b.label else 0
    if a.split != b.split:
        return 0
    return 1 + _common_nodes(a.left, b.left) + _common_nodes(a.right, b.right)
