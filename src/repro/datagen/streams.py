"""Chunked data arrival for the dynamic-environment experiments (§4, §5.3).

The paper's dynamic experiments feed the tree "chunks" of new training data
(insertions) and expire old chunks (deletions).  :class:`ChunkStream`
produces a deterministic sequence of labeled chunks, optionally switching
the underlying distribution after a given chunk index to model drift
(Figure 14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..exceptions import DatagenError
from .agrawal import AgrawalConfig, AgrawalGenerator


@dataclass(frozen=True)
class DriftSpec:
    """Switch the labeling distribution starting at ``after_chunk``."""

    after_chunk: int
    drifted_config: AgrawalConfig

    def __post_init__(self) -> None:
        if self.after_chunk < 0:
            raise DatagenError("after_chunk must be >= 0")


class ChunkStream:
    """A deterministic stream of training-data chunks.

    Each chunk is an independent sample; chunk ``i`` switches to the
    drifted configuration when a :class:`DriftSpec` says ``i >=
    after_chunk``.  The stream is reproducible from (config, seed).
    """

    def __init__(
        self,
        config: AgrawalConfig,
        chunk_size: int,
        seed: int = 0,
        drift: DriftSpec | None = None,
    ):
        if chunk_size < 1:
            raise DatagenError("chunk_size must be >= 1")
        self._config = config
        self._chunk_size = chunk_size
        self._seed = seed
        self._drift = drift

    @property
    def chunk_size(self) -> int:
        return self._chunk_size

    def chunk(self, index: int) -> np.ndarray:
        """The ``index``-th chunk (deterministic random function of index)."""
        if index < 0:
            raise DatagenError("chunk index must be >= 0")
        config = self._config
        if self._drift is not None and index >= self._drift.after_chunk:
            config = self._drift.drifted_config
        generator = AgrawalGenerator(config, seed=self._seed * 1_000_003 + index)
        return generator.generate(self._chunk_size)

    def chunks(self, n_chunks: int) -> Iterator[np.ndarray]:
        """The first ``n_chunks`` chunks, in order."""
        for i in range(n_chunks):
            yield self.chunk(i)
