"""Synthetic workloads: the Agrawal et al. [AIS93] generator and chunk streams."""

from .agrawal import (
    BASE_ATTRIBUTE_NAMES,
    AgrawalConfig,
    AgrawalGenerator,
    agrawal_schema,
    drifted_function_1,
)
from .functions import FUNCTIONS, GROUP_A, GROUP_B, labels_for
from .streams import ChunkStream, DriftSpec

__all__ = [
    "AgrawalConfig",
    "AgrawalGenerator",
    "BASE_ATTRIBUTE_NAMES",
    "ChunkStream",
    "DriftSpec",
    "FUNCTIONS",
    "GROUP_A",
    "GROUP_B",
    "agrawal_schema",
    "drifted_function_1",
    "labels_for",
]
