"""The synthetic data generator of Agrawal et al. [AIS93].

Nine predictor attributes (six numerical, three categorical) plus a binary
class label assigned by one of ten classification functions
(:mod:`repro.datagen.functions`).  This is the workload used by the BOAT,
SPRINT, PUBLIC and RainForest performance studies.

Attribute distributions (per [AIS93]):

========== ============ ===========================================
attribute   type         distribution
========== ============ ===========================================
salary      numerical    uniform in [20 000, 150 000]
commission  numerical    0 if salary >= 75 000, else uniform in
                         [10 000, 75 000]
age         numerical    uniform integer in [20, 80]
elevel      categorical  uniform in {0, ..., 4}
car         categorical  uniform in {0, ..., 19} (20 makes)
zipcode     categorical  uniform in {0, ..., 8} (9 zipcodes)
hvalue      numerical    uniform in [k*50 000, k*150 000] with
                         k = zipcode + 1 (house values track zipcode)
hyears      numerical    uniform integer in [1, 30]
loan        numerical    uniform in [0, 500 000]
========== ============ ===========================================

Our binary record is 64 bytes (float64 numerics, int32 categoricals and
label) versus the paper's 40; record size only scales byte counters, never
scan counts or comparative shapes.

Noise and extra random attributes reproduce the paper's §5 experiments:
*label noise* assigns, with probability ``noise``, a uniformly random class
label; ``extra_numeric`` appends predictively-useless uniform attributes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from ..exceptions import DatagenError
from ..storage import CLASS_COLUMN, Attribute, Schema, Table
from .functions import FUNCTIONS, GROUP_A, GROUP_B, labels_for

#: Names of the nine standard predictor attributes, in schema order.
BASE_ATTRIBUTE_NAMES = (
    "salary",
    "commission",
    "age",
    "elevel",
    "car",
    "zipcode",
    "hvalue",
    "hyears",
    "loan",
)


def agrawal_schema(extra_numeric: int = 0) -> Schema:
    """The generator's schema, optionally with extra random attributes."""
    if extra_numeric < 0:
        raise DatagenError("extra_numeric must be >= 0")
    attrs = [
        Attribute.numerical("salary"),
        Attribute.numerical("commission"),
        Attribute.numerical("age"),
        Attribute.categorical("elevel", 5),
        Attribute.categorical("car", 20),
        Attribute.categorical("zipcode", 9),
        Attribute.numerical("hvalue"),
        Attribute.numerical("hyears"),
        Attribute.numerical("loan"),
    ]
    attrs.extend(
        Attribute.numerical(f"extra_{i}") for i in range(extra_numeric)
    )
    return Schema(attrs, n_classes=2)


@dataclass(frozen=True)
class AgrawalConfig:
    """Parameters of one synthetic workload.

    Attributes:
        function_id: which of the ten classification functions labels the
            data (the BOAT paper uses 1, 6 and 7).
        noise: probability that a record's label is replaced by a uniformly
            random class (the paper sweeps 2 %–10 %).
        extra_numeric: number of additional uniform-random numerical
            attributes with no predictive power (paper Figure 10/11).
        label_fn: optional override of the classification function; takes a
            batch, returns a boolean Group A mask.  Used by the dynamic
            experiments to model distribution drift.
    """

    function_id: int = 1
    noise: float = 0.0
    extra_numeric: int = 0
    label_fn: Callable[[np.ndarray], np.ndarray] | None = None

    def __post_init__(self) -> None:
        if self.label_fn is None and self.function_id not in FUNCTIONS:
            raise DatagenError(
                f"function_id must be in 1..10, got {self.function_id}"
            )
        if not 0.0 <= self.noise <= 1.0:
            raise DatagenError("noise must be in [0, 1]")
        if self.extra_numeric < 0:
            raise DatagenError("extra_numeric must be >= 0")


class AgrawalGenerator:
    """Deterministic, seedable batch generator for one workload."""

    def __init__(self, config: AgrawalConfig | None = None, seed: int = 0):
        self._config = config or AgrawalConfig()
        self._schema = agrawal_schema(self._config.extra_numeric)
        self._rng = np.random.default_rng(seed)
        self._seed = seed

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def config(self) -> AgrawalConfig:
        return self._config

    def generate(self, n: int) -> np.ndarray:
        """Generate ``n`` labeled records as one structured array."""
        if n < 0:
            raise DatagenError("n must be >= 0")
        rng = self._rng
        batch = self._schema.empty(n)
        salary = rng.uniform(20_000.0, 150_000.0, n)
        batch["salary"] = salary
        commission = rng.uniform(10_000.0, 75_000.0, n)
        batch["commission"] = np.where(salary >= 75_000.0, 0.0, commission)
        batch["age"] = rng.integers(20, 81, n).astype(np.float64)
        batch["elevel"] = rng.integers(0, 5, n, dtype=np.int32)
        batch["car"] = rng.integers(0, 20, n, dtype=np.int32)
        zipcode = rng.integers(0, 9, n, dtype=np.int32)
        batch["zipcode"] = zipcode
        k = (zipcode + 1).astype(np.float64)
        batch["hvalue"] = rng.uniform(0.0, 1.0, n) * (k * 100_000.0) + k * 50_000.0
        batch["hyears"] = rng.integers(1, 31, n).astype(np.float64)
        batch["loan"] = rng.uniform(0.0, 500_000.0, n)
        for i in range(self._config.extra_numeric):
            batch[f"extra_{i}"] = rng.uniform(0.0, 1.0, n)
        batch[CLASS_COLUMN] = self._labels(batch)
        if self._config.noise > 0.0 and n > 0:
            flip = rng.random(n) < self._config.noise
            random_labels = rng.integers(
                0, self._schema.n_classes, n, dtype=np.int32
            )
            batch[CLASS_COLUMN] = np.where(
                flip, random_labels, batch[CLASS_COLUMN]
            ).astype(np.int32)
        return batch

    def _labels(self, batch: np.ndarray) -> np.ndarray:
        if self._config.label_fn is not None:
            mask = self._config.label_fn(batch)
            return np.where(mask, GROUP_A, GROUP_B).astype(np.int32)
        return labels_for(batch, self._config.function_id)

    def batches(self, n: int, batch_rows: int = 65536) -> Iterator[np.ndarray]:
        """Generate ``n`` records as a stream of batches."""
        if batch_rows < 1:
            raise DatagenError("batch_rows must be >= 1")
        remaining = n
        while remaining > 0:
            take = min(batch_rows, remaining)
            yield self.generate(take)
            remaining -= take

    def fill_table(self, table: Table, n: int, batch_rows: int = 65536) -> Table:
        """Append ``n`` generated records to ``table`` and return it."""
        if table.schema != self._schema:
            raise DatagenError("table schema does not match generator schema")
        for batch in self.batches(n, batch_rows):
            table.append(batch)
        return table


def drifted_function_1(age_threshold: float = 70.0) -> Callable[[np.ndarray], np.ndarray]:
    """A modified Function 1 whose tree differs only in part of the space.

    Function 1 labels Group A iff ``age < 40 or age >= 60``; the modified
    function keeps the young branch intact and moves the old-age boundary to
    ``age_threshold``.  A tree built on the original data only needs its
    ``age >= 40`` subtree rebuilt — exactly the paper's Figure 14 scenario.
    """

    def predicate(batch: np.ndarray) -> np.ndarray:
        age = batch["age"]
        return (age < 40) | (age >= age_threshold)

    return predicate
