"""The ten classification functions of Agrawal et al. [AIS93].

Each function maps a batch of generated records to class labels
{0 = Group A, 1 = Group B}.  The BOAT paper evaluates Functions 1, 6 and 7:
Function 1 depends on two predictor attributes, Function 6 on three, and
Function 7 on a linear combination of four.  We implement all ten so the
generator is a complete substrate; formulas follow the published
definitions (salary ranges in dollars, age in years).

All predicates are vectorized over numpy structured arrays produced by
:mod:`repro.datagen.agrawal`.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

GROUP_A = 0
GROUP_B = 1

#: Signature of one classification function: batch -> bool mask of Group A.
PredicateFn = Callable[[np.ndarray], np.ndarray]


def _age_bands(batch: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    age = batch["age"]
    return age < 40, (age >= 40) & (age < 60), age >= 60


def function_1(batch: np.ndarray) -> np.ndarray:
    """Group A iff age < 40 or age >= 60."""
    young, _, old = _age_bands(batch)
    return young | old


def function_2(batch: np.ndarray) -> np.ndarray:
    """Age bands with disjoint salary windows."""
    young, middle, old = _age_bands(batch)
    salary = batch["salary"]
    return (
        (young & (50_000 <= salary) & (salary <= 100_000))
        | (middle & (75_000 <= salary) & (salary <= 125_000))
        | (old & (25_000 <= salary) & (salary <= 75_000))
    )


def function_3(batch: np.ndarray) -> np.ndarray:
    """Age bands with education-level windows."""
    young, middle, old = _age_bands(batch)
    elevel = batch["elevel"]
    return (
        (young & (elevel <= 1))
        | (middle & (1 <= elevel) & (elevel <= 3))
        | (old & (2 <= elevel) & (elevel <= 4))
    )


def function_4(batch: np.ndarray) -> np.ndarray:
    """Age/education bands, each with its own salary window."""
    young, middle, old = _age_bands(batch)
    elevel = batch["elevel"]
    salary = batch["salary"]
    in_low = elevel <= 1
    return (
        young
        & np.where(
            in_low,
            (25_000 <= salary) & (salary <= 75_000),
            (50_000 <= salary) & (salary <= 100_000),
        )
        | middle
        & np.where(
            in_low,
            (50_000 <= salary) & (salary <= 100_000),
            (75_000 <= salary) & (salary <= 125_000),
        )
        | old
        & np.where(
            in_low,
            (25_000 <= salary) & (salary <= 75_000),
            (25_000 <= salary) & (salary <= 75_000),
        )
    )


def function_5(batch: np.ndarray) -> np.ndarray:
    """Age bands with salary/loan trade-off windows."""
    young, middle, old = _age_bands(batch)
    salary = batch["salary"]
    loan = batch["loan"]
    rich = (50_000 <= salary) & (salary <= 100_000)
    return (
        young
        & np.where(
            rich,
            (100_000 <= loan) & (loan <= 300_000),
            (200_000 <= loan) & (loan <= 400_000),
        )
        | middle
        & np.where(
            (75_000 <= salary) & (salary <= 125_000),
            (200_000 <= loan) & (loan <= 400_000),
            (300_000 <= loan) & (loan <= 500_000),
        )
        | old
        & np.where(
            (25_000 <= salary) & (salary <= 75_000),
            (300_000 <= loan) & (loan <= 500_000),
            (100_000 <= loan) & (loan <= 300_000),
        )
    )


def function_6(batch: np.ndarray) -> np.ndarray:
    """Age bands with total-income (salary + commission) windows.

    The BOAT paper's "three predicates" function.
    """
    young, middle, old = _age_bands(batch)
    total = batch["salary"] + batch["commission"]
    return (
        (young & (50_000 <= total) & (total <= 100_000))
        | (middle & (75_000 <= total) & (total <= 125_000))
        | (old & (25_000 <= total) & (total <= 75_000))
    )


def disposable_7(batch: np.ndarray) -> np.ndarray:
    """Disposable income used by Function 7 (four predictor attributes)."""
    return (
        0.67 * (batch["salary"] + batch["commission"])
        - 5_000.0 * batch["elevel"]
        - 0.2 * batch["loan"]
        - 10_000.0
    )


def function_7(batch: np.ndarray) -> np.ndarray:
    """Group A iff disposable income > 0 (linear in four attributes)."""
    return disposable_7(batch) > 0


def _equity(batch: np.ndarray) -> np.ndarray:
    hyears = batch["hyears"]
    return np.where(hyears >= 20, 0.1 * batch["hvalue"] * (hyears - 20.0), 0.0)


def function_8(batch: np.ndarray) -> np.ndarray:
    """Group A iff 0.67 * (salary + commission) - 5000 * elevel - 20000 > 0."""
    disposable = (
        0.67 * (batch["salary"] + batch["commission"])
        - 5_000.0 * batch["elevel"]
        - 20_000.0
    )
    return disposable > 0


def function_9(batch: np.ndarray) -> np.ndarray:
    """Function 8 plus a loan term: ... - 0.2 * loan + 10000 > 0."""
    disposable = (
        0.67 * (batch["salary"] + batch["commission"])
        - 5_000.0 * batch["elevel"]
        - 0.2 * batch["loan"]
        + 10_000.0
    )
    return disposable > 0


def function_10(batch: np.ndarray) -> np.ndarray:
    """Function 8 with a home-equity term: ... + 0.2 * equity - 10000 > 0."""
    disposable = (
        0.67 * (batch["salary"] + batch["commission"])
        - 5_000.0 * batch["elevel"]
        + 0.2 * _equity(batch)
        - 10_000.0
    )
    return disposable > 0


FUNCTIONS: Dict[int, PredicateFn] = {
    1: function_1,
    2: function_2,
    3: function_3,
    4: function_4,
    5: function_5,
    6: function_6,
    7: function_7,
    8: function_8,
    9: function_9,
    10: function_10,
}


def labels_for(batch: np.ndarray, function_id: int) -> np.ndarray:
    """Class labels (0 = Group A, 1 = Group B) for a generated batch."""
    try:
        predicate = FUNCTIONS[function_id]
    except KeyError:
        raise ValueError(
            f"function_id must be in 1..10, got {function_id}"
        ) from None
    return np.where(predicate(batch), GROUP_A, GROUP_B).astype(np.int32)
