"""Spill files and the hybrid in-memory/on-disk tuple store.

During BOAT's cleanup scan, tuples falling inside a node's confidence
interval are held at that node (the paper's temporary file ``S_n``).
Usually these sets are small and stay in RAM, but the paper notes that a
truly scalable implementation writes them to temporary files.
:class:`TupleStore` does both: it buffers in memory up to a limit and
transparently spills to a :class:`SpillFile` beyond it.
"""

from __future__ import annotations

import os
import tempfile
from typing import Iterator

import numpy as np

from ..exceptions import StorageError
from .io_stats import IOStats
from .schema import Schema


class SpillFile:
    """A headerless temporary file of fixed-width records for one node.

    Unlike :class:`~repro.storage.table.DiskTable` there is no header —
    the schema is carried in memory because spill files never outlive the
    process that created them.
    """

    def __init__(
        self,
        schema: Schema,
        directory: str | os.PathLike | None = None,
        io_stats: IOStats | None = None,
    ):
        self._schema = schema
        self._io_stats = io_stats
        fd, self._path = tempfile.mkstemp(
            suffix=".spill", dir=None if directory is None else os.fspath(directory)
        )
        os.close(fd)
        self._n_rows = 0
        self._deleted = False
        if io_stats is not None:
            io_stats.record_spill_file()

    @property
    def path(self) -> str:
        return self._path

    @property
    def schema(self) -> Schema:
        return self._schema

    def __len__(self) -> int:
        return self._n_rows

    def _check_live(self) -> None:
        if self._deleted:
            raise StorageError(f"spill file {self._path} already deleted")

    def append(self, batch: np.ndarray) -> None:
        self._check_live()
        if batch.dtype != self._schema.dtype():
            raise StorageError("spill append with mismatched dtype")
        if batch.size == 0:
            return
        raw = np.ascontiguousarray(batch).tobytes()
        with open(self._path, "ab") as fh:
            fh.write(raw)
        self._n_rows += len(batch)
        if self._io_stats is not None:
            self._io_stats.record_write(len(batch), len(raw))

    def read_all(self) -> np.ndarray:
        self._check_live()
        dtype = self._schema.dtype()
        with open(self._path, "rb") as fh:
            raw = fh.read()
        if len(raw) != self._n_rows * dtype.itemsize:
            raise StorageError(
                f"spill file {self._path}: expected {self._n_rows} records, "
                f"found {len(raw)} bytes"
            )
        batch = np.frombuffer(raw, dtype=dtype)
        if self._io_stats is not None:
            self._io_stats.record_read(len(batch), len(raw))
        return batch

    def rewrite(self, batch: np.ndarray) -> None:
        """Replace the file's contents (used when deleting tuples)."""
        self._check_live()
        if batch.dtype != self._schema.dtype():
            raise StorageError("spill rewrite with mismatched dtype")
        raw = np.ascontiguousarray(batch).tobytes()
        with open(self._path, "wb") as fh:
            fh.write(raw)
        self._n_rows = len(batch)
        if self._io_stats is not None:
            self._io_stats.record_write(len(batch), len(raw))

    def delete(self) -> None:
        """Remove the backing file; further use raises."""
        if not self._deleted:
            self._deleted = True
            try:
                os.remove(self._path)
            except FileNotFoundError:
                pass

    def __del__(self) -> None:  # best-effort cleanup
        try:
            self.delete()
        except Exception:
            pass


class TupleStore:
    """Held tuples for one node: RAM up to a budget, disk beyond it.

    The store preserves append order.  ``read_all`` always returns the full
    contents (memory + spilled); ``replace`` substitutes the contents, used
    by incremental deletion.
    """

    def __init__(
        self,
        schema: Schema,
        memory_budget_rows: int = 1 << 20,
        directory: str | os.PathLike | None = None,
        io_stats: IOStats | None = None,
    ):
        if memory_budget_rows < 0:
            raise ValueError("memory_budget_rows must be >= 0")
        self._schema = schema
        self._budget = memory_budget_rows
        self._directory = directory
        self._io_stats = io_stats
        self._chunks: list[np.ndarray] = []
        self._mem_rows = 0
        self._spill: SpillFile | None = None

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def spilled(self) -> bool:
        return self._spill is not None

    def __len__(self) -> int:
        spilled = 0 if self._spill is None else len(self._spill)
        return self._mem_rows + spilled

    def append(self, batch: np.ndarray) -> None:
        if batch.dtype != self._schema.dtype():
            raise StorageError("TupleStore append with mismatched dtype")
        if batch.size == 0:
            return
        if self._spill is None and self._mem_rows + len(batch) > self._budget:
            self._spill_out()
        if self._spill is not None:
            self._spill.append(batch)
        else:
            self._chunks.append(np.ascontiguousarray(batch))
            self._mem_rows += len(batch)

    def _spill_out(self) -> None:
        self._spill = SpillFile(self._schema, self._directory, self._io_stats)
        for chunk in self._chunks:
            self._spill.append(chunk)
        self._chunks.clear()
        self._mem_rows = 0

    def read_all(self) -> np.ndarray:
        parts: list[np.ndarray] = []
        if self._spill is not None:
            parts.append(self._spill.read_all())
        parts.extend(self._chunks)
        if not parts:
            return self._schema.empty(0)
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    def iter_batches(self, batch_rows: int) -> Iterator[np.ndarray]:
        """Yield the contents re-batched to ``batch_rows``."""
        data = self.read_all()
        for start in range(0, len(data), batch_rows):
            yield data[start : start + batch_rows]

    def replace(self, batch: np.ndarray) -> None:
        """Substitute the store's entire contents with ``batch``."""
        if batch.dtype != self._schema.dtype():
            raise StorageError("TupleStore replace with mismatched dtype")
        if self._spill is not None and len(batch) <= self._budget:
            self._spill.delete()
            self._spill = None
        if self._spill is not None:
            self._spill.rewrite(batch)
            self._chunks.clear()
            self._mem_rows = 0
        else:
            self._chunks = [np.ascontiguousarray(batch)] if batch.size else []
            self._mem_rows = len(batch)

    def clear(self) -> None:
        """Drop all contents and release any spill file."""
        self._chunks.clear()
        self._mem_rows = 0
        if self._spill is not None:
            self._spill.delete()
            self._spill = None
