"""Spill files and the hybrid in-memory/on-disk tuple store.

During BOAT's cleanup scan, tuples falling inside a node's confidence
interval are held at that node (the paper's temporary file ``S_n``).
Usually these sets are small and stay in RAM, but the paper notes that a
truly scalable implementation writes them to temporary files.
:class:`TupleStore` does both: it buffers in memory up to a limit and
transparently spills to a :class:`SpillFile` beyond it.

Spill lifecycle: by default a spill file is an *anonymous tempfile* that
never outlives the process — ``clear``/``delete`` remove it, and garbage
collection removes it as a last resort.  A store created with a
``durable_path`` instead spills to that exact path and survives process
death: :meth:`TupleStore.checkpoint` flushes the in-memory tail to the
file and fsyncs it, and :meth:`TupleStore.restore` re-attaches the file
after a crash, truncating any rows written past the last checkpoint.
Durable files are never removed by ``clear`` or ``__del__`` — after a
failed (or even finalizing) build they *are* the recovery state.  Only
:meth:`SpillFile.delete`, :meth:`TupleStore.restore` of an empty
manifest, and the checkpoint manager's success sweep remove them (see
``docs/RECOVERY.md``).
"""

from __future__ import annotations

import io as _io
import os
import tempfile
from typing import Iterable, Iterator

import numpy as np

from ..exceptions import StorageError
from .io_stats import IOStats
from .schema import Schema


def _rebatch(
    chunks: Iterable[np.ndarray], batch_rows: int
) -> Iterator[np.ndarray]:
    """Re-slice a stream of arrays into exactly ``batch_rows``-sized batches.

    Only the final batch may be smaller.  Peak extra allocation is one
    batch (full input chunks pass through as views without copying).
    """
    pending: list[np.ndarray] = []
    pending_rows = 0
    for chunk in chunks:
        # Grid-aligned chunks (the steady state of a ShardedTable scan)
        # pass straight through without slicing.
        if not pending and len(chunk) == batch_rows:
            yield chunk
            continue
        start = 0
        while start < len(chunk):
            take = min(batch_rows - pending_rows, len(chunk) - start)
            piece = chunk[start : start + take]
            start += take
            if not pending and take == batch_rows:
                yield piece
                continue
            pending.append(piece)
            pending_rows += take
            if pending_rows == batch_rows:
                yield pending[0] if len(pending) == 1 else np.concatenate(pending)
                pending, pending_rows = [], 0
    if pending:
        yield pending[0] if len(pending) == 1 else np.concatenate(pending)


class SpillFile:
    """A headerless file of fixed-width records for one node.

    Unlike :class:`~repro.storage.table.DiskTable` there is no header —
    the schema is carried in memory (or, for durable spills, in the
    checkpoint manifest next to the file).  By default the backing file
    is an anonymous tempfile; pass ``path`` to create it at a fixed,
    recoverable location instead (see module docstring for the lifecycle
    difference).
    """

    def __init__(
        self,
        schema: Schema,
        directory: str | os.PathLike | None = None,
        io_stats: IOStats | None = None,
        path: str | os.PathLike | None = None,
    ):
        self._schema = schema
        self._io_stats = io_stats
        self._durable = path is not None
        if path is not None:
            self._path = os.fspath(path)
            with open(self._path, "wb"):
                pass  # create empty / truncate any stale content
        else:
            fd, self._path = tempfile.mkstemp(
                suffix=".spill",
                dir=None if directory is None else os.fspath(directory),
            )
            os.close(fd)
        self._n_rows = 0
        self._deleted = False
        if io_stats is not None:
            io_stats.record_spill_file()

    @classmethod
    def attach(
        cls,
        schema: Schema,
        path: str | os.PathLike,
        n_rows: int,
        io_stats: IOStats | None = None,
    ) -> "SpillFile":
        """Re-attach a durable spill file left behind by a crashed process.

        The file is truncated to exactly ``n_rows`` records: rows (or a
        torn partial record) appended after the manifest recording
        ``n_rows`` was written are discarded, which is what makes
        checkpoint + manifest a consistent recovery point.
        """
        spill = cls.__new__(cls)
        spill._schema = schema
        spill._io_stats = io_stats
        spill._durable = True
        spill._path = os.fspath(path)
        spill._deleted = False
        want = n_rows * schema.record_size
        try:
            have = os.path.getsize(spill._path)
        except FileNotFoundError:
            raise StorageError(f"durable spill file {spill._path} is missing")
        if have < want:
            raise StorageError(
                f"durable spill file {spill._path}: {have} bytes on disk but "
                f"the manifest promises {want} (checkpoint corrupted?)"
            )
        if have > want:
            with open(spill._path, "rb+") as fh:
                fh.truncate(want)
        spill._n_rows = n_rows
        return spill

    @property
    def path(self) -> str:
        return self._path

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def durable(self) -> bool:
        return self._durable

    def __len__(self) -> int:
        return self._n_rows

    def _check_live(self) -> None:
        if self._deleted:
            raise StorageError(f"spill file {self._path} already deleted")

    def append(self, batch: np.ndarray) -> None:
        self._check_live()
        if batch.dtype != self._schema.dtype():
            raise StorageError("spill append with mismatched dtype")
        if batch.size == 0:
            return
        raw = np.ascontiguousarray(batch).tobytes()
        with open(self._path, "ab") as fh:
            fh.write(raw)
        self._n_rows += len(batch)
        if self._io_stats is not None:
            self._io_stats.record_write(len(batch), len(raw))

    def sync(self) -> None:
        """fsync the backing file (checkpoint durability barrier)."""
        self._check_live()
        fd = os.open(self._path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def read_all(self) -> np.ndarray:
        """The full contents as a *writable* structured array.

        The raw bytes are copied into a mutable buffer before the numpy
        view is taken — callers (e.g. incremental deletion's
        ``multiset_remove``) mutate the result in place, which a read-only
        ``frombuffer`` over ``bytes`` would refuse.
        """
        self._check_live()
        dtype = self._schema.dtype()
        with open(self._path, "rb") as fh:
            raw = fh.read()
        if len(raw) != self._n_rows * dtype.itemsize:
            raise StorageError(
                f"spill file {self._path}: expected {self._n_rows} records, "
                f"found {len(raw)} bytes"
            )
        batch = np.frombuffer(bytearray(raw), dtype=dtype)
        if self._io_stats is not None:
            self._io_stats.record_read(len(batch), len(raw))
        return batch

    def iter_batches(self, batch_rows: int) -> Iterator[np.ndarray]:
        """Stream the contents as writable ``batch_rows``-sized batches.

        Reads the file sequentially; peak allocation is one batch, never
        the whole file — the point of spilling in the first place.
        """
        self._check_live()
        if batch_rows < 1:
            raise ValueError("batch_rows must be >= 1")
        dtype = self._schema.dtype()
        rec = dtype.itemsize
        remaining = self._n_rows
        with open(self._path, "rb", buffering=_io.DEFAULT_BUFFER_SIZE) as fh:
            while remaining > 0:
                take = min(batch_rows, remaining)
                raw = fh.read(take * rec)
                if len(raw) != take * rec:
                    raise StorageError(
                        f"spill file {self._path}: short read "
                        f"({len(raw)} of {take * rec} bytes)"
                    )
                remaining -= take
                if self._io_stats is not None:
                    self._io_stats.record_read(take, len(raw))
                yield np.frombuffer(bytearray(raw), dtype=dtype)

    def rewrite(self, batch: np.ndarray) -> None:
        """Replace the file's contents (used when deleting tuples)."""
        self._check_live()
        if batch.dtype != self._schema.dtype():
            raise StorageError("spill rewrite with mismatched dtype")
        raw = np.ascontiguousarray(batch).tobytes()
        with open(self._path, "wb") as fh:
            fh.write(raw)
        self._n_rows = len(batch)
        if self._io_stats is not None:
            self._io_stats.record_write(len(batch), len(raw))

    def delete(self) -> None:
        """Remove the backing file; further use raises."""
        if not self._deleted:
            self._deleted = True
            try:
                os.remove(self._path)
            except FileNotFoundError:
                pass

    def __del__(self) -> None:  # best-effort cleanup of *anonymous* files
        try:
            if not self._durable:
                self.delete()
        except Exception:
            pass


class TupleStore:
    """Held tuples for one node: RAM up to a budget, disk beyond it.

    The store preserves append order.  ``read_all`` always returns the full
    contents (memory + spilled); ``replace`` substitutes the contents, used
    by incremental deletion.  With a ``durable_path`` the store becomes
    checkpointable: :meth:`checkpoint` persists everything accumulated so
    far, :meth:`restore` re-attaches it after a crash.
    """

    def __init__(
        self,
        schema: Schema,
        memory_budget_rows: int = 1 << 20,
        directory: str | os.PathLike | None = None,
        io_stats: IOStats | None = None,
        durable_path: str | os.PathLike | None = None,
    ):
        if memory_budget_rows < 0:
            raise ValueError("memory_budget_rows must be >= 0")
        self._schema = schema
        self._budget = memory_budget_rows
        self._directory = directory
        self._io_stats = io_stats
        self._durable_path = (
            None if durable_path is None else os.fspath(durable_path)
        )
        self._chunks: list[np.ndarray] = []
        self._mem_rows = 0
        self._spill: SpillFile | None = None

    @classmethod
    def restore(
        cls,
        schema: Schema,
        durable_path: str | os.PathLike,
        n_rows: int,
        memory_budget_rows: int = 1 << 20,
        io_stats: IOStats | None = None,
    ) -> "TupleStore":
        """Rebuild a store from a durable spill file and its manifest count.

        ``n_rows == 0`` yields a fresh empty store (any stale file at the
        path is removed); otherwise the file is attached and truncated to
        exactly ``n_rows`` records.
        """
        store = cls(
            schema,
            memory_budget_rows,
            io_stats=io_stats,
            durable_path=durable_path,
        )
        if n_rows == 0:
            try:
                os.remove(store._durable_path)
            except FileNotFoundError:
                pass
            return store
        store._spill = SpillFile.attach(schema, durable_path, n_rows, io_stats)
        return store

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def spilled(self) -> bool:
        return self._spill is not None

    @property
    def durable_path(self) -> str | None:
        return self._durable_path

    def __len__(self) -> int:
        spilled = 0 if self._spill is None else len(self._spill)
        return self._mem_rows + spilled

    def append(self, batch: np.ndarray) -> None:
        if batch.dtype != self._schema.dtype():
            raise StorageError("TupleStore append with mismatched dtype")
        if batch.size == 0:
            return
        if self._spill is None and self._mem_rows + len(batch) > self._budget:
            self._spill_out()
        if self._spill is not None:
            self._spill.append(batch)
        else:
            self._chunks.append(np.ascontiguousarray(batch))
            self._mem_rows += len(batch)

    def _spill_out(self) -> None:
        self._spill = SpillFile(
            self._schema,
            self._directory,
            self._io_stats,
            path=self._durable_path,
        )
        for chunk in self._chunks:
            self._spill.append(chunk)
        self._chunks.clear()
        self._mem_rows = 0

    def checkpoint(self) -> int:
        """Persist all contents to the durable spill file; return the row count.

        Forces the in-memory tail to disk and fsyncs, so a manifest entry
        recording the returned count is recoverable even if the process is
        killed immediately after.  An empty, never-spilled store stays
        fileless and reports 0.  Requires a ``durable_path``.
        """
        if self._durable_path is None:
            raise StorageError("checkpoint() requires a TupleStore durable_path")
        if self._spill is None:
            if self._mem_rows == 0:
                return 0
            self._spill_out()
        self._spill.sync()
        return len(self._spill)

    def read_all(self) -> np.ndarray:
        parts: list[np.ndarray] = []
        if self._spill is not None:
            parts.append(self._spill.read_all())
        parts.extend(self._chunks)
        if not parts:
            return self._schema.empty(0)
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    def iter_batches(self, batch_rows: int) -> Iterator[np.ndarray]:
        """Yield the contents re-batched to ``batch_rows``.

        Spilled contents are streamed from the file one batch at a time —
        peak allocation stays O(batch) regardless of store size, so a
        store that outgrew memory is never materialized whole just to be
        re-batched.
        """

        def chunks() -> Iterator[np.ndarray]:
            if self._spill is not None:
                yield from self._spill.iter_batches(batch_rows)
            yield from self._chunks

        yield from _rebatch(chunks(), batch_rows)

    def replace(self, batch: np.ndarray) -> None:
        """Substitute the store's entire contents with ``batch``.

        The memory budget applies exactly as it does to :meth:`append`: a
        replacement larger than the budget goes to the spill file even
        when the store previously fit in memory.
        """
        if batch.dtype != self._schema.dtype():
            raise StorageError("TupleStore replace with mismatched dtype")
        if self._spill is not None and len(batch) <= self._budget:
            self._spill.delete()
            self._spill = None
        if self._spill is None and len(batch) > self._budget:
            self._chunks.clear()
            self._mem_rows = 0
            self._spill = SpillFile(
                self._schema,
                self._directory,
                self._io_stats,
                path=self._durable_path,
            )
        if self._spill is not None:
            self._spill.rewrite(batch)
            self._chunks.clear()
            self._mem_rows = 0
        else:
            self._chunks = [np.ascontiguousarray(batch)] if batch.size else []
            self._mem_rows = len(batch)

    def clear(self) -> None:
        """Drop all contents and release the spill file.

        A *durable* file is dropped from the store but left on disk: until
        the checkpoint manager's success sweep removes it, the file (with
        the manifest that counts its rows) is the crash-recovery state —
        a build that dies even during finalization, after ``release()``
        cleared some stores, must still be resumable from its last
        checkpoint.
        """
        self._chunks.clear()
        self._mem_rows = 0
        if self._spill is not None:
            if not self._spill.durable:
                self._spill.delete()
            self._spill = None
