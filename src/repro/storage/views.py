"""Non-materialized training views (the paper's data-warehouse scenario).

§1 and §7 emphasize that BOAT "offers the flexibility of computing the
training database on demand instead of materializing it, as long as
random samples from parts of the training database can be obtained" —
e.g. mining a decision tree directly from a star-join query over a
warehouse.  Level-wise algorithms are impractical here because every
level re-executes the query; BOAT executes it exactly twice.

:class:`StarJoinView` is a :class:`~repro.storage.table.Table` whose
scan *computes* the training records on the fly: a selection over a fact
table joined to dimension tables on foreign keys, projected onto a
training schema.  Nothing is ever written; every scan re-runs the query,
and the I/O charged is the fact-table traffic plus (once per scan) the
dimension lookups — the honest cost of not materializing.

Sampling uses reservoir sampling over the computed stream (the [Olk93]
requirement), so :func:`repro.storage.sampling.reservoir_sample` applies
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Mapping

import numpy as np

from ..exceptions import SchemaError, StorageError
from .schema import CLASS_COLUMN, Schema
from .table import DEFAULT_BATCH_ROWS, Table


@dataclass(frozen=True)
class Dimension:
    """One dimension table of the star schema.

    Attributes:
        name: dimension name (used as the output-column prefix default).
        key_column: the fact-table column holding this dimension's key.
        table: the dimension rows as a structured array indexed by
            position — key k maps to ``table[k]``.
    """

    name: str
    key_column: str
    table: np.ndarray

    def lookup(self, keys: np.ndarray) -> np.ndarray:
        if keys.size and (keys.min() < 0 or keys.max() >= len(self.table)):
            raise StorageError(
                f"dimension {self.name!r}: foreign key out of range "
                f"[{keys.min()}, {keys.max()}] vs {len(self.table)} rows"
            )
        return self.table[keys]


#: Computes one output column from (fact batch, {dimension name: joined rows}).
ColumnExpr = Callable[[np.ndarray, Mapping[str, np.ndarray]], np.ndarray]


class StarJoinView(Table):
    """A training 'table' computed by a star join, never materialized.

    Args:
        fact: the fact table (any :class:`Table`; its I/O stats are the
            view's I/O stats).
        dimensions: dimension tables joined on fact foreign-key columns.
        schema: the *training* schema of the view's output.
        columns: one expression per training column (class label
            included), evaluated per scanned fact batch after the joins.
    """

    def __init__(
        self,
        fact: Table,
        dimensions: list[Dimension],
        schema: Schema,
        columns: dict[str, ColumnExpr],
    ):
        super().__init__(schema, fact.io_stats)
        expected = {a.name for a in schema.attributes} | {CLASS_COLUMN}
        if set(columns) != expected:
            missing = expected - set(columns)
            extra = set(columns) - expected
            raise SchemaError(
                f"view columns mismatch: missing {sorted(missing)}, "
                f"unexpected {sorted(extra)}"
            )
        names = [d.name for d in dimensions]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate dimension names: {names}")
        self._fact = fact
        self._dimensions = tuple(dimensions)
        self._columns = columns

    def __len__(self) -> int:
        return len(self._fact)

    def append(self, batch: np.ndarray) -> None:
        raise StorageError(
            "StarJoinView is read-only; append to the fact table instead"
        )

    def scan(self, batch_rows: int = DEFAULT_BATCH_ROWS) -> Iterator[np.ndarray]:
        """Execute the query: scan facts, join dimensions, project.

        The fact table's scan does the I/O charging (and a full-scan tick
        at completion), so downstream algorithms see the honest cost of
        recomputing the view.
        """
        for fact_batch in self._fact.scan(batch_rows):
            yield self._compute(fact_batch)

    def _compute(self, fact_batch: np.ndarray) -> np.ndarray:
        joined: dict[str, np.ndarray] = {}
        for dim in self._dimensions:
            joined[dim.name] = dim.lookup(fact_batch[dim.key_column])
        out = self._schema.empty(len(fact_batch))
        for name, expr in self._columns.items():
            values = expr(fact_batch, joined)
            out[name] = values
        return out


def materialize_view(view: StarJoinView, target: Table, batch_rows: int = 65536) -> Table:
    """Explicitly materialize a view into a target table (for comparisons).

    This is exactly what the paper says previous algorithms need and BOAT
    avoids; benchmarks use it to price the materialization alternative.
    """
    for batch in view.scan(batch_rows):
        target.append(batch)
    return target
