"""Non-materialized training views (the paper's data-warehouse scenario).

§1 and §7 emphasize that BOAT "offers the flexibility of computing the
training database on demand instead of materializing it, as long as
random samples from parts of the training database can be obtained" —
e.g. mining a decision tree directly from a star-join query over a
warehouse.  Level-wise algorithms are impractical here because every
level re-executes the query; BOAT executes it exactly twice.

:class:`StarJoinView` is a :class:`~repro.storage.table.Table` whose
scan *computes* the training records on the fly: a selection over a fact
table joined to dimension tables on foreign keys, projected onto a
training schema.  Nothing is ever written; every scan re-runs the query,
and the I/O charged is the fact-table traffic plus (once per scan) the
dimension lookups — the honest cost of not materializing.

Sampling uses reservoir sampling over the computed stream (the [Olk93]
requirement), so :func:`repro.storage.sampling.reservoir_sample` applies
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Mapping

import numpy as np

from ..exceptions import SchemaError, StorageError
from .schema import CLASS_COLUMN, Schema
from .table import DEFAULT_BATCH_ROWS, Table, bounded_scan


@dataclass(frozen=True)
class Dimension:
    """One dimension table of the star schema.

    Attributes:
        name: dimension name (used as the output-column prefix default).
        key_column: the fact-table column holding this dimension's key.
        table: the dimension rows as a structured array indexed by
            position — key k maps to ``table[k]``.
    """

    name: str
    key_column: str
    table: np.ndarray

    def lookup(self, keys: np.ndarray) -> np.ndarray:
        bad = (keys < 0) | (keys >= len(self.table))
        if bad.any():
            positions = np.flatnonzero(bad)
            shown = ", ".join(
                f"{int(keys[p])} (fact row {int(p)})" for p in positions[:5]
            )
            if len(positions) > 5:
                shown += f", ... {len(positions) - 5} more"
            raise StorageError(
                f"dimension {self.name!r}: {len(positions)} foreign key(s) "
                f"outside [0, {len(self.table)}): {shown}"
            )
        return self.table[keys]


#: Computes one output column from (fact batch, {dimension name: joined rows}).
ColumnExpr = Callable[[np.ndarray, Mapping[str, np.ndarray]], np.ndarray]


class StarJoinView(Table):
    """A training 'table' computed by a star join, never materialized.

    Args:
        fact: the fact table (any :class:`Table`; its I/O stats are the
            view's I/O stats).
        dimensions: dimension tables joined on fact foreign-key columns.
        schema: the *training* schema of the view's output.
        columns: one expression per training column (class label
            included), evaluated per scanned fact batch after the joins.
    """

    #: View row *i* is a pure function of fact row *i*, so bounded scans
    #: are forwarded to the fact table (which seeks when it can).
    scan_supports_start_row = True
    scan_supports_stop_row = True

    def __init__(
        self,
        fact: Table,
        dimensions: list[Dimension],
        schema: Schema,
        columns: dict[str, ColumnExpr],
    ):
        super().__init__(schema, fact.io_stats)
        expected = {a.name for a in schema.attributes} | {CLASS_COLUMN}
        if set(columns) != expected:
            missing = expected - set(columns)
            extra = set(columns) - expected
            raise SchemaError(
                f"view columns mismatch: missing {sorted(missing)}, "
                f"unexpected {sorted(extra)}"
            )
        names = [d.name for d in dimensions]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate dimension names: {names}")
        self._fact = fact
        self._dimensions = tuple(dimensions)
        self._columns = columns

    def __len__(self) -> int:
        return len(self._fact)

    def append(self, batch: np.ndarray) -> None:
        raise StorageError(
            "StarJoinView is read-only; append to the fact table instead"
        )

    def scan(
        self,
        batch_rows: int = DEFAULT_BATCH_ROWS,
        start_row: int = 0,
        stop_row: int | None = None,
    ) -> Iterator[np.ndarray]:
        """Execute the query: scan facts, join dimensions, project.

        The fact table's scan does the I/O charging (and a full-scan tick
        at completion), so downstream algorithms see the honest cost of
        recomputing the view.

        View row *i* is computed from fact row *i*, so a bounded scan of
        the view is a bounded scan of the fact table: ``start_row`` and
        ``stop_row`` are forwarded through
        :func:`~repro.storage.table.bounded_scan` (seeking natively when
        the fact table can, clipping otherwise).  This is what lets views
        compose with :class:`~repro.recovery.RetryingTable`,
        checkpoint/resume, and grid-aligned sharded sub-scans.
        """
        for fact_batch in bounded_scan(
            self._fact, batch_rows, start_row, stop_row
        ):
            yield self._compute(fact_batch)

    def scan_columns(
        self,
        columns: list[str],
        batch_rows: int = DEFAULT_BATCH_ROWS,
        start_row: int = 0,
    ) -> Iterator[np.ndarray]:
        """Projected view scan: only the requested expressions are computed.

        Every dimension is still joined (an expression may read any of
        them), but unrequested column expressions are skipped.  The I/O
        charged is still the fact-table traffic — the view computes, it
        does not store, so there is no narrower 'projection file' to read.
        """
        fields = self._projection_fields(columns)
        for fact_batch in bounded_scan(self._fact, batch_rows, start_row):
            yield self._compute(fact_batch, fields)[fields]

    def _compute(
        self, fact_batch: np.ndarray, fields: list[str] | None = None
    ) -> np.ndarray:
        joined: dict[str, np.ndarray] = {}
        for dim in self._dimensions:
            joined[dim.name] = dim.lookup(fact_batch[dim.key_column])
        if fields is None:
            out = self._schema.empty(len(fact_batch))
        else:
            # Skipped expressions leave their columns unwritten; zero them
            # so the projected batch has deterministic bytes end to end.
            out = np.zeros(len(fact_batch), dtype=self._schema.dtype())
        for name, expr in self._columns.items():
            if fields is not None and name not in fields:
                continue
            values = expr(fact_batch, joined)
            out[name] = values
        return out


def materialize_view(view: StarJoinView, target: Table, batch_rows: int = 65536) -> Table:
    """Explicitly materialize a view into a target table (for comparisons).

    This is exactly what the paper says previous algorithms need and BOAT
    avoids; benchmarks use it to price the materialization alternative.
    """
    _check_materialize_schema(view.schema, target.schema)
    for batch in view.scan(batch_rows):
        target.append(batch)
    return target


def _check_materialize_schema(view_schema: Schema, target_schema: Schema) -> None:
    """Raise a :class:`SchemaError` naming every column mismatch."""
    view_attrs = {a.name: a for a in view_schema.attributes}
    target_attrs = {a.name: a for a in target_schema.attributes}
    problems = []
    for name in sorted(set(view_attrs) - set(target_attrs)):
        problems.append(f"column {name!r} missing from target")
    for name in sorted(set(target_attrs) - set(view_attrs)):
        problems.append(f"target column {name!r} not in view")
    for name in sorted(set(view_attrs) & set(target_attrs)):
        ours, theirs = view_attrs[name], target_attrs[name]
        if ours != theirs:
            problems.append(
                f"column {name!r} differs: view has {ours}, target has {theirs}"
            )
    if not problems and list(view_attrs) != list(target_attrs):
        problems.append(
            f"column order differs: view has {list(view_attrs)}, "
            f"target has {list(target_attrs)}"
        )
    if view_schema.n_classes != target_schema.n_classes:
        problems.append(
            f"n_classes differs: view has {view_schema.n_classes}, "
            f"target has {target_schema.n_classes}"
        )
    if problems:
        raise SchemaError(
            "cannot materialize view: target schema does not match "
            "(" + "; ".join(problems) + ")"
        )
