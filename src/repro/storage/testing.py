"""Fault-injection wrappers for storage-failure tests.

A scalable build is judged by what it leaves behind when the device
fails mid-scan: the fault suites wrap a real table in a
:class:`FaultyTable` that raises (or corrupts) at a configured scan
offset, then assert that the drivers surface a clean
:class:`~repro.exceptions.ReproError` and release every spill file they
created.  The wrapper lives in the library (not the test tree) so
downstream experiments can reuse it to rehearse their own failure
handling.

Three fault kinds model the failures a real scan can hit:

* ``"ioerror"`` — the device dies: an :class:`OSError` (``EIO``), the
  exception an actual failed ``read(2)`` raises.  Drivers are expected
  to translate it into a :class:`~repro.exceptions.StorageError`.
* ``"short_read"`` — the file ends early: the
  :class:`~repro.exceptions.StorageError` a :class:`DiskTable` raises
  itself when a read returns fewer bytes than the record count promised.
* ``"corrupt_row"`` — a record decodes to garbage: the batch's class
  label is driven out of the schema's range and schema validation
  raises :class:`~repro.exceptions.SchemaError`, modelling a reader
  that checksums what it decodes.

Which scan trips is configurable (``fail_on_scan``): for BOAT, scan 0
is the sample draw and scan 1 the cleanup scan, so both failure points
of the two-scan algorithm can be rehearsed separately.

The transport-level sibling — dropped, delayed, duplicated, and
mid-scan-aborted *shard requests* rather than device faults — is
:class:`repro.shard.testing.FaultyTransport`.
"""

from __future__ import annotations

import errno
from typing import Iterator

import numpy as np

from ..config import DEFAULT_BATCH_ROWS
from ..exceptions import StorageError
from .schema import CLASS_COLUMN
from .table import Table

#: Valid values for FaultyTable's ``kind``.
FAULT_KINDS = ("ioerror", "short_read", "corrupt_row")


class FaultyTable(Table):
    """A table wrapper that injects one storage fault at a scan offset.

    Args:
        inner: the real table; all reads come from it, and its
            ``io_stats`` keeps being charged normally up to the fault.
        kind: one of :data:`FAULT_KINDS`.
        fail_on_scan: zero-based index of the scan that trips (counted
            from the wrapper's construction; earlier scans run clean).
        fail_at_row: row offset within the tripping scan at which the
            fault fires — the batch containing this row never reaches
            the caller intact.

    The wrapper deliberately is *not* a :class:`DiskTable`, so BOAT's
    cleanup scan takes the generic parent-iterated path and the fault
    surfaces in the driving thread, exactly as a :class:`MemoryTable`
    or view would deliver it.
    """

    def __init__(
        self,
        inner: Table,
        kind: str = "ioerror",
        fail_on_scan: int = 0,
        fail_at_row: int = 0,
    ):
        if kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}, got {kind!r}")
        super().__init__(inner.schema, inner.io_stats)
        self._inner = inner
        self.kind = kind
        self.fail_on_scan = fail_on_scan
        self.fail_at_row = fail_at_row
        #: Scans handed out so far (faulting or not) — lets tests assert
        #: how far a driver got before dying.
        self.scans_started = 0

    def __len__(self) -> int:
        return len(self._inner)

    def append(self, batch: np.ndarray) -> None:
        self._inner.append(batch)

    def close(self) -> None:
        self._inner.close()

    def scan(self, batch_rows: int = DEFAULT_BATCH_ROWS) -> Iterator[np.ndarray]:
        scan_index = self.scans_started
        self.scans_started += 1
        armed = scan_index == self.fail_on_scan
        position = 0
        for batch in self._inner.scan(batch_rows):
            if armed and position + len(batch) > self.fail_at_row:
                yield self._trip(batch, self.fail_at_row - position)
            position += len(batch)
            yield batch
        if armed and position <= self.fail_at_row:
            # The configured offset lies past the data: still trip, at
            # end-of-scan, so a misconfigured test fails loudly instead
            # of silently running clean.
            yield self._trip(self._schema.empty(0), 0)

    def _trip(self, batch: np.ndarray, row_in_batch: int) -> np.ndarray:
        if self.kind == "ioerror":
            raise OSError(errno.EIO, "injected device error mid-scan")
        if self.kind == "short_read":
            raise StorageError(
                f"injected short read at scan row {self.fail_at_row}"
            )
        corrupted = batch.copy() if batch.size else self._schema.empty(1)
        index = min(row_in_batch, len(corrupted) - 1)
        corrupted[CLASS_COLUMN][index] = self._schema.n_classes + 7
        # Raises SchemaError — the reader noticing the decoded garbage.
        self._schema.validate_batch(corrupted)
        raise AssertionError("corrupt label passed schema validation")
