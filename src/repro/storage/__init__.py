"""Out-of-core storage substrate: schemas, tables, spills, sampling, I/O stats."""

from .io_stats import IOStats
from .sampling import (
    bootstrap_resample,
    choose_sample_indices,
    gather_rows,
    reservoir_sample,
    sample_known_size,
    sample_table,
    split_into_chunks,
)
from .schema import CLASS_COLUMN, Attribute, AttributeKind, Schema
from .sharded import (
    ShardedTable,
    ShardManifest,
    partition_table,
    replicate_shards,
    reshard,
    schema_digest,
)
from .spill import SpillFile, TupleStore
from .sql import SqlDialect, SqliteDialect, SqlTable, get_dialect
from .table import (
    DiskTable,
    MemoryTable,
    Table,
    bounded_scan,
    read_json_sidecar,
    write_json_sidecar,
)
from .csv_io import CategoryEncoder, infer_schema, read_csv, write_csv
from .testing import FAULT_KINDS, FaultyTable
from .views import Dimension, StarJoinView, materialize_view

__all__ = [
    "Attribute",
    "AttributeKind",
    "CLASS_COLUMN",
    "CategoryEncoder",
    "Dimension",
    "DiskTable",
    "FAULT_KINDS",
    "FaultyTable",
    "IOStats",
    "MemoryTable",
    "Schema",
    "ShardManifest",
    "ShardedTable",
    "SpillFile",
    "SqlDialect",
    "SqlTable",
    "SqliteDialect",
    "StarJoinView",
    "Table",
    "TupleStore",
    "bounded_scan",
    "get_dialect",
    "materialize_view",
    "bootstrap_resample",
    "choose_sample_indices",
    "gather_rows",
    "infer_schema",
    "partition_table",
    "read_csv",
    "read_json_sidecar",
    "replicate_shards",
    "reshard",
    "reservoir_sample",
    "sample_known_size",
    "sample_table",
    "schema_digest",
    "split_into_chunks",
    "write_csv",
    "write_json_sidecar",
]
