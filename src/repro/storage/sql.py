"""SQL-backed training tables: BOAT where the data already lives.

The paper's warehouse scenario (§1, §7) assumes the training database is
*computed*, not materialized — and in practice it is computed by a DBMS.
:class:`SqlTable` implements the full :class:`~repro.storage.table.Table`
contract over a relational table (stdlib ``sqlite3`` by default, with a
narrow :class:`SqlDialect` seam for duckdb/postgres), so every driver in
the repo — flat, checkpointed, retried, QUEST — trains straight out of
the database.  :meth:`SqlTable.from_query` goes further: the "table" is
an arbitrary ``SELECT`` (e.g. a star join), never materialized; BOAT
executes it exactly twice.

Scan semantics match the other backends byte for byte:

* Rows are ordered by an explicit ``ORDER BY`` key (``rowid`` for owned
  tables) so row *i* is stable across scans; ``start_row``/``stop_row``
  become ``LIMIT``/``OFFSET``, so partial scans read only the requested
  interval at the source.
* I/O charging is honest: each emitted batch bills its decoded byte
  width, a scan covering the whole table ticks ``record_full_scan()``,
  and partial scans never do.
* Value canonicalization is the storage engine's, not ours: sqlite has
  no NaN (``NaN`` binds as ``NULL`` and is decoded back to the canonical
  ``float64`` NaN) and stores ``-0.0`` as ``0.0``.  Round-tripping
  through :meth:`append` therefore canonicalizes those two values;
  everything else (±inf included) is bit-exact.  See docs/SQL.md.

The pushdown path (:mod:`repro.core.sql_pushdown` +
:class:`repro.kernels.sql.SqlAggregations`) builds on the accessors this
class exposes (``connection``/``source_sql``/``order_sql``/
``select_columns_sql``/``decode_rows``) to run the cleanup scan's
statistics as grouped aggregation queries inside the DBMS.
"""

from __future__ import annotations

import os
import sqlite3
from typing import Iterator, Sequence

import numpy as np

from ..exceptions import SchemaError, StorageError, TableClosedError
from .io_stats import IOStats
from .schema import CLASS_COLUMN, Attribute, Schema
from .table import DEFAULT_BATCH_ROWS, Table

#: Table holding one schema-JSON row per BOAT training table in the file.
_META_TABLE = "boat_schema"

#: Identifiers sqlite implicitly defines on every rowid table; a training
#: attribute with one of these names would shadow the scan-order key.
_RESERVED_COLUMNS = frozenset({"rowid", "oid", "_rowid_"})


class SqlDialect:
    """What the backend needs from a SQL engine — deliberately narrow.

    The base class is the portable core (``?`` placeholders, double-quoted
    identifiers, ANSI types); engine subclasses override only what
    differs.  :class:`SqliteDialect` is the stdlib default;
    :class:`DuckDbDialect` and :class:`PostgresDialect` are gated stubs
    that document the seam without adding dependencies.
    """

    name = "ansi"
    #: DB-API parameter placeholder.
    placeholder = "?"
    #: Exception types the engine raises; translated to StorageError.
    error_types: tuple[type[BaseException], ...] = ()

    def connect(self, path: str):
        raise StorageError(f"dialect {self.name!r} cannot open files")

    def quote(self, identifier: str) -> str:
        return '"' + identifier.replace('"', '""') + '"'

    def column_type(self, attribute: Attribute | None) -> str:
        """SQL type for an attribute (``None`` = the class label)."""
        if attribute is not None and attribute.is_numerical:
            return "DOUBLE PRECISION"
        return "INTEGER"

    def upsert_schema_sql(self, meta_table: str) -> str:
        """Statement storing (table_name, schema_json), replacing on key."""
        raise StorageError(f"dialect {self.name!r} cannot store schemas")


class SqliteDialect(SqlDialect):
    """The stdlib engine: zero new dependencies, files or ``:memory:``."""

    name = "sqlite"
    error_types = (sqlite3.Error,)

    def connect(self, path: str):
        # check_same_thread=False: scans may be driven from worker pools;
        # the backend serializes access through one cursor per scan.
        return sqlite3.connect(path, check_same_thread=False)

    def column_type(self, attribute: Attribute | None) -> str:
        if attribute is not None and attribute.is_numerical:
            return "REAL"
        return "INTEGER"

    def upsert_schema_sql(self, meta_table: str) -> str:
        return (
            f"INSERT OR REPLACE INTO {self.quote(meta_table)} "
            "(table_name, schema_json) VALUES (?, ?)"
        )


class DuckDbDialect(SqlDialect):
    """Seam stub: scans/pushdown are engine-agnostic, only connect differs."""

    name = "duckdb"

    def connect(self, path: str):
        try:
            import duckdb  # noqa: F401
        except ImportError as exc:
            raise StorageError(
                "duckdb is not installed; the duckdb dialect is a seam "
                "for environments that ship it (pass an open DB-API "
                "connection to SqlTable instead of a path)"
            ) from exc
        import duckdb

        return duckdb.connect(path)

    def upsert_schema_sql(self, meta_table: str) -> str:
        return (
            f"INSERT OR REPLACE INTO {self.quote(meta_table)} "
            "(table_name, schema_json) VALUES (?, ?)"
        )


class PostgresDialect(SqlDialect):
    """Seam stub: postgres needs a server; connect via your own driver."""

    name = "postgres"
    placeholder = "%s"

    def connect(self, path: str):
        raise StorageError(
            "the postgres dialect has no file-path connect; open a "
            "connection with your driver and pass it to SqlTable"
        )

    def upsert_schema_sql(self, meta_table: str) -> str:
        return (
            f"INSERT INTO {self.quote(meta_table)} "
            "(table_name, schema_json) VALUES (%s, %s) "
            "ON CONFLICT (table_name) DO UPDATE "
            "SET schema_json = EXCLUDED.schema_json"
        )


_DIALECTS: dict[str, type[SqlDialect]] = {
    "sqlite": SqliteDialect,
    "duckdb": DuckDbDialect,
    "postgres": PostgresDialect,
}


def get_dialect(name: str | SqlDialect) -> SqlDialect:
    """Resolve a dialect by name (or pass an instance through)."""
    if isinstance(name, SqlDialect):
        return name
    try:
        return _DIALECTS[name]()
    except KeyError:
        raise StorageError(
            f"unknown SQL dialect {name!r}; known: {sorted(_DIALECTS)}"
        ) from None


class SqlTable(Table):
    """A :class:`Table` whose rows live in a relational database.

    Construct via :meth:`create` (new training table), :meth:`open`
    (existing one, schema read back from the ``boat_schema`` metadata
    table) or :meth:`from_query` (read-only over an arbitrary ``SELECT``
    — the non-materialized path).  The first argument of create/open is
    a database path (opened via the dialect, closed with the table) or
    an already-open DB-API connection (left open).
    """

    scan_supports_start_row = True
    scan_supports_stop_row = True

    def __init__(
        self,
        connection,
        schema: Schema,
        *,
        dialect: SqlDialect,
        source_sql: str,
        order_sql: str,
        io_stats: IOStats | None = None,
        owns_connection: bool = False,
        table_name: str | None = None,
    ):
        super().__init__(schema, io_stats)
        self._conn = connection
        self._dialect = dialect
        self._source_sql = source_sql
        self._order_sql = order_sql
        self._owns_connection = owns_connection
        self._table_name = table_name
        self._closed = False
        self._fields = [a.name for a in schema.attributes] + [CLASS_COLUMN]
        self._select_sql = ", ".join(dialect.quote(f) for f in self._fields)
        self._numeric = [
            i for i, a in enumerate(schema.attributes) if a.is_numerical
        ]
        # Owned tables cache the row count (appends keep it current);
        # query-backed tables re-count, since the query's inputs may grow.
        self._n_rows: int | None = None
        if table_name is not None:
            self._n_rows = self._count()

    # -- construction ------------------------------------------------------

    @classmethod
    def create(
        cls,
        database,
        schema: Schema,
        name: str = "training",
        io_stats: IOStats | None = None,
        dialect: str | SqlDialect = "sqlite",
    ) -> "SqlTable":
        """Create (or replace) a training table and store its schema."""
        resolved = get_dialect(dialect)
        for attr_name in [a.name for a in schema.attributes] + [CLASS_COLUMN]:
            if attr_name.lower() in _RESERVED_COLUMNS:
                raise SchemaError(
                    f"attribute name {attr_name!r} is reserved by the SQL "
                    "backend (it aliases the scan-order rowid)"
                )
        conn, owns = cls._connect(database, resolved)
        try:
            q = resolved.quote
            cols = ", ".join(
                f"{q(a.name)} {resolved.column_type(a)}"
                for a in schema.attributes
            )
            cols += f", {q(CLASS_COLUMN)} {resolved.column_type(None)}"
            conn.execute(
                f"CREATE TABLE IF NOT EXISTS {q(_META_TABLE)} "
                "(table_name TEXT PRIMARY KEY, schema_json TEXT NOT NULL)"
            )
            conn.execute(f"DROP TABLE IF EXISTS {q(name)}")
            conn.execute(f"CREATE TABLE {q(name)} ({cols})")
            conn.execute(
                resolved.upsert_schema_sql(_META_TABLE),
                (name, schema.to_json()),
            )
            conn.commit()
        except resolved.error_types as exc:
            if owns:
                conn.close()
            raise StorageError(f"cannot create SQL table {name!r}: {exc}") from exc
        return cls(
            conn,
            schema,
            dialect=resolved,
            source_sql=resolved.quote(name),
            order_sql="rowid",
            io_stats=io_stats,
            owns_connection=owns,
            table_name=name,
        )

    @classmethod
    def open(
        cls,
        database,
        name: str = "training",
        io_stats: IOStats | None = None,
        dialect: str | SqlDialect = "sqlite",
    ) -> "SqlTable":
        """Open an existing training table; the schema round-trips back."""
        resolved = get_dialect(dialect)
        conn, owns = cls._connect(database, resolved)
        q = resolved.quote
        try:
            row = conn.execute(
                f"SELECT schema_json FROM {q(_META_TABLE)} "
                "WHERE table_name = " + resolved.placeholder,
                (name,),
            ).fetchone()
        except resolved.error_types as exc:
            if owns:
                conn.close()
            raise StorageError(
                f"not a BOAT SQL database (no {_META_TABLE!r} table): {exc}"
            ) from exc
        if row is None:
            if owns:
                conn.close()
            raise StorageError(f"no BOAT training table {name!r} in database")
        return cls(
            conn,
            Schema.from_json(row[0]),
            dialect=resolved,
            source_sql=q(name),
            order_sql="rowid",
            io_stats=io_stats,
            owns_connection=owns,
            table_name=name,
        )

    @classmethod
    def from_query(
        cls,
        connection,
        select_sql: str,
        schema: Schema,
        order_sql: str,
        io_stats: IOStats | None = None,
        dialect: str | SqlDialect = "sqlite",
    ) -> "SqlTable":
        """A read-only table over an arbitrary ``SELECT`` — never materialized.

        ``select_sql`` must produce every schema column (class label
        included) plus whatever ``order_sql`` references; ``order_sql``
        must be a deterministic total order so row *i* is stable across
        scans (the BOAT guarantee depends on it).  Every scan re-executes
        the query — the honest cost of not materializing.
        """
        resolved = get_dialect(dialect)
        return cls(
            connection,
            schema,
            dialect=resolved,
            source_sql=f"({select_sql})",
            order_sql=order_sql,
            io_stats=io_stats,
            owns_connection=False,
            table_name=None,
        )

    @staticmethod
    def _connect(database, dialect: SqlDialect):
        if isinstance(database, (str, os.PathLike)):
            return dialect.connect(os.fspath(database)), True
        return database, False

    # -- pushdown accessors ------------------------------------------------

    @property
    def connection(self):
        """The underlying DB-API connection (pushdown queries use it)."""
        return self._conn

    @property
    def dialect(self) -> SqlDialect:
        return self._dialect

    @property
    def source_sql(self) -> str:
        """FROM-clause source: a quoted table name or a subquery."""
        return self._source_sql

    @property
    def order_sql(self) -> str:
        """ORDER BY key defining the scan's row order."""
        return self._order_sql

    @property
    def select_columns_sql(self) -> str:
        """Comma-joined quoted schema columns, in record order."""
        return self._select_sql

    def execute(self, sql: str, params: Sequence = ()):
        """Run a statement, translating engine errors to StorageError."""
        self._check_open()
        try:
            return self._conn.execute(sql, tuple(params))
        except self._dialect.error_types as exc:
            raise StorageError(f"SQL scan failed: {exc}") from exc

    def decode_rows(self, rows: list, fields: list[str] | None = None) -> np.ndarray:
        """Decode DB-API rows (column order = ``fields``) to a record batch.

        ``None`` values in numerical columns decode to NaN (sqlite stores
        NaN as NULL).  Unlisted fields are zero-filled; the returned array
        always has the schema's full record dtype.
        """
        fields = self._fields if fields is None else fields
        out = np.zeros(len(rows), dtype=self._schema.dtype())
        for j, name in enumerate(fields):
            column = [row[j] for row in rows]
            if any(v is None for v in column):
                out[name] = [np.nan if v is None else v for v in column]
            else:
                out[name] = column
        return out

    # -- Table contract ----------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise TableClosedError("SqlTable is closed")

    def _count(self) -> int:
        cur = self.execute(f"SELECT COUNT(*) FROM {self._source_sql}")
        try:
            return int(cur.fetchone()[0])
        finally:
            cur.close()

    def __len__(self) -> int:
        self._check_open()
        if self._n_rows is not None:
            return self._n_rows
        return self._count()

    def append(self, batch: np.ndarray) -> None:
        self._check_open()
        if self._table_name is None:
            raise StorageError(
                "query-backed SqlTable is read-only; append to the "
                "underlying tables instead"
            )
        self._schema.validate_batch(batch)
        if len(batch) == 0:
            return
        placeholders = ", ".join([self._dialect.placeholder] * len(self._fields))
        sql = (
            f"INSERT INTO {self._source_sql} ({self._select_sql}) "
            f"VALUES ({placeholders})"
        )
        try:
            # tolist() yields python scalars; NaN binds as NULL in sqlite.
            self._conn.executemany(sql, batch.tolist())
            self._conn.commit()
        except self._dialect.error_types as exc:
            raise StorageError(f"SQL append failed: {exc}") from exc
        self._n_rows += len(batch)
        if self._io_stats is not None:
            self._io_stats.record_write(len(batch), batch.nbytes)

    def scan(
        self,
        batch_rows: int = DEFAULT_BATCH_ROWS,
        start_row: int = 0,
        stop_row: int | None = None,
    ) -> Iterator[np.ndarray]:
        """Ordered scan of rows ``[start_row, stop_row)`` via LIMIT/OFFSET.

        One query per scan; batches materialize ``batch_rows`` rows at a
        time via ``fetchmany``.  Only emitted rows are read and charged;
        a scan covering the whole table counts as one full scan.
        """
        yield from self._scan_fields(None, batch_rows, start_row, stop_row)

    def scan_columns(
        self,
        columns: list[str],
        batch_rows: int = DEFAULT_BATCH_ROWS,
        start_row: int = 0,
        stop_row: int | None = None,
    ) -> Iterator[np.ndarray]:
        """Projection scan: only the projected columns are selected.

        The database reads just the requested columns (plus the class
        label), and only their bytes are charged — the SQL analogue of
        RF-Vertical's per-attribute projection files.
        """
        fields = self._projection_fields(columns)
        yield from self._scan_fields(fields, batch_rows, start_row, stop_row)

    def _scan_fields(
        self,
        fields: list[str] | None,
        batch_rows: int,
        start_row: int,
        stop_row: int | None,
    ) -> Iterator[np.ndarray]:
        self._check_open()
        if batch_rows < 1:
            raise ValueError("batch_rows must be >= 1")
        if start_row < 0:
            raise ValueError("start_row must be >= 0")
        rows_at_start = len(self)
        limit = (
            rows_at_start if stop_row is None else min(stop_row, rows_at_start)
        )
        remaining = max(limit - start_row, 0)
        select = (
            self._select_sql
            if fields is None
            else ", ".join(self._dialect.quote(f) for f in fields)
        )
        if fields is None:
            row_nbytes = self._schema.dtype().itemsize
        else:
            dtype = self._schema.dtype()
            row_nbytes = sum(dtype[name].itemsize for name in fields)
        if remaining:
            cursor = self.execute(
                f"SELECT {select} FROM {self._source_sql} "
                f"ORDER BY {self._order_sql} "
                f"LIMIT {self._dialect.placeholder} "
                f"OFFSET {self._dialect.placeholder}",
                (remaining, start_row),
            )
            try:
                while True:
                    rows = cursor.fetchmany(batch_rows)
                    if not rows:
                        break
                    batch = self.decode_rows(rows, fields)
                    if self._io_stats is not None:
                        self._io_stats.record_read(
                            len(rows), len(rows) * row_nbytes
                        )
                    yield batch if fields is None else batch[fields]
            finally:
                cursor.close()
        if (
            self._io_stats is not None
            and start_row == 0
            and limit == rows_at_start
        ):
            self._io_stats.record_full_scan()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._owns_connection:
            self._conn.close()
