"""I/O accounting.

The paper's headline claim — BOAT builds several tree levels in two scans
while level-wise algorithms pay one scan per level — is a claim about I/O.
Wall-clock time in a Python reproduction mixes in interpreter overhead, so
every table and spill file charges its reads and writes to an
:class:`IOStats` counter and benchmarks report both.

A single :class:`IOStats` instance is shared by all storage objects that
belong to one experiment; algorithms receive it via the table they scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class IOStats:
    """Mutable counters for one experiment run.

    Attributes:
        full_scans: completed sequential scans over a primary table.
        tuples_read / tuples_written: record-level traffic, all files.
        bytes_read / bytes_written: byte-level traffic, all files.
        spill_files: temporary files created (S_n and family spills).
    """

    full_scans: int = 0
    tuples_read: int = 0
    tuples_written: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    spill_files: int = 0

    def record_read(self, tuples: int, nbytes: int) -> None:
        self.tuples_read += tuples
        self.bytes_read += nbytes

    def record_write(self, tuples: int, nbytes: int) -> None:
        self.tuples_written += tuples
        self.bytes_written += nbytes

    def record_full_scan(self) -> None:
        self.full_scans += 1

    def record_spill_file(self) -> None:
        self.spill_files += 1

    def snapshot(self) -> "IOStats":
        """An independent copy of the current counters."""
        return IOStats(
            full_scans=self.full_scans,
            tuples_read=self.tuples_read,
            tuples_written=self.tuples_written,
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
            spill_files=self.spill_files,
        )

    def delta_since(self, earlier: "IOStats") -> "IOStats":
        """Counters accumulated since ``earlier`` (a prior snapshot)."""
        return IOStats(
            full_scans=self.full_scans - earlier.full_scans,
            tuples_read=self.tuples_read - earlier.tuples_read,
            tuples_written=self.tuples_written - earlier.tuples_written,
            bytes_read=self.bytes_read - earlier.bytes_read,
            bytes_written=self.bytes_written - earlier.bytes_written,
            spill_files=self.spill_files - earlier.spill_files,
        )

    def reset(self) -> None:
        """Zero every counter in place."""
        self.full_scans = 0
        self.tuples_read = 0
        self.tuples_written = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.spill_files = 0

    def __str__(self) -> str:
        return (
            f"scans={self.full_scans} "
            f"read={self.tuples_read}t/{self.bytes_read}B "
            f"written={self.tuples_written}t/{self.bytes_written}B "
            f"spills={self.spill_files}"
        )
