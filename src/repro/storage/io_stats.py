"""I/O accounting.

The paper's headline claim — BOAT builds several tree levels in two scans
while level-wise algorithms pay one scan per level — is a claim about I/O.
Wall-clock time in a Python reproduction mixes in interpreter overhead, so
every table and spill file charges its reads and writes to an
:class:`IOStats` counter and benchmarks report both.

A single :class:`IOStats` instance is shared by all storage objects that
belong to one experiment; algorithms receive it via the table they scan.
With the parallel execution layer several workers may charge one instance
concurrently, so every update takes an internal lock, and workers that
keep private counters hand them back through :meth:`merge`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

_COUNTERS = (
    "full_scans",
    "tuples_read",
    "tuples_written",
    "bytes_read",
    "bytes_written",
    "spill_files",
)


@dataclass
class IOStats:
    """Mutable, thread-safe counters for one experiment run.

    Attributes:
        full_scans: completed sequential scans over a primary table.
        tuples_read / tuples_written: record-level traffic, all files.
        bytes_read / bytes_written: byte-level traffic, all files.
        spill_files: temporary files created (S_n and family spills).
    """

    full_scans: int = 0
    tuples_read: int = 0
    tuples_written: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    spill_files: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def record_read(self, tuples: int, nbytes: int) -> None:
        with self._lock:
            self.tuples_read += tuples
            self.bytes_read += nbytes

    def record_write(self, tuples: int, nbytes: int) -> None:
        with self._lock:
            self.tuples_written += tuples
            self.bytes_written += nbytes

    def record_full_scan(self) -> None:
        with self._lock:
            self.full_scans += 1

    def record_spill_file(self) -> None:
        with self._lock:
            self.spill_files += 1

    def snapshot(self) -> "IOStats":
        """An independent, atomically consistent copy of the counters."""
        with self._lock:
            return IOStats(
                full_scans=self.full_scans,
                tuples_read=self.tuples_read,
                tuples_written=self.tuples_written,
                bytes_read=self.bytes_read,
                bytes_written=self.bytes_written,
                spill_files=self.spill_files,
            )

    def delta_since(self, earlier: "IOStats") -> "IOStats":
        """Counters accumulated since ``earlier`` (a prior snapshot).

        Both sides are snapshotted under their own locks: ``earlier`` may
        be a *live* instance (e.g. a worker's private counters still being
        charged), and reading its six fields without the lock could
        interleave with a concurrent ``record_read`` and yield a torn
        delta — tuples from before the update, bytes from after.  Span
        boundaries take deltas exactly while workers run, so this path is
        the one that would hit it.
        """
        current = self.snapshot()
        earlier = earlier.snapshot()
        return IOStats(
            full_scans=current.full_scans - earlier.full_scans,
            tuples_read=current.tuples_read - earlier.tuples_read,
            tuples_written=current.tuples_written - earlier.tuples_written,
            bytes_read=current.bytes_read - earlier.bytes_read,
            bytes_written=current.bytes_written - earlier.bytes_written,
            spill_files=current.spill_files - earlier.spill_files,
        )

    def merge(self, other: "IOStats") -> None:
        """Add another instance's counters into this one atomically.

        The parallel cleanup scan gives each worker task a private
        :class:`IOStats`, then merges them into the experiment's shared
        instance in deterministic task order.
        """
        if other is self:
            raise ValueError("cannot merge an IOStats into itself")
        delta = other.snapshot()
        with self._lock:
            self.full_scans += delta.full_scans
            self.tuples_read += delta.tuples_read
            self.tuples_written += delta.tuples_written
            self.bytes_read += delta.bytes_read
            self.bytes_written += delta.bytes_written
            self.spill_files += delta.spill_files

    def reset(self) -> None:
        """Zero every counter in place."""
        with self._lock:
            self.full_scans = 0
            self.tuples_read = 0
            self.tuples_written = 0
            self.bytes_read = 0
            self.bytes_written = 0
            self.spill_files = 0

    def __getstate__(self) -> dict:
        # Locks cannot cross process boundaries; pickle the counters only.
        snap = self.snapshot()
        return {name: getattr(snap, name) for name in _COUNTERS}

    def __setstate__(self, state: dict) -> None:
        for name in _COUNTERS:
            setattr(self, name, state[name])
        self._lock = threading.Lock()

    def as_dict(self) -> dict[str, int]:
        """An atomically consistent ``{counter: value}`` mapping."""
        snap = self.snapshot()
        return {name: getattr(snap, name) for name in _COUNTERS}

    def __str__(self) -> str:
        # One consistent snapshot, not six racy field reads.
        snap = self.snapshot()
        return (
            f"scans={snap.full_scans} "
            f"read={snap.tuples_read}t/{snap.bytes_read}B "
            f"written={snap.tuples_written}t/{snap.bytes_written}B "
            f"spills={snap.spill_files}"
        )
