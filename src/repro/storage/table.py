"""Training database tables.

Two implementations of one interface:

* :class:`DiskTable` — the paper's setting: a binary file of fixed-width
  records that does not fit in memory and must be scanned sequentially.
  Every scan and append is charged to an :class:`~repro.storage.io_stats.IOStats`.
* :class:`MemoryTable` — the in-memory samples (D', bootstrap samples,
  collected families) the algorithms work on once data fits in RAM.
  Operations on it are free of I/O charges, matching the paper's cost model.

Scans yield batches (numpy structured arrays) rather than single records;
all algorithms in this library are vectorized over batches.
"""

from __future__ import annotations

import io
import json
import os
import struct
import time
from abc import ABC, abstractmethod
from typing import Iterator

import numpy as np

from ..config import DEFAULT_BATCH_ROWS
from ..exceptions import SchemaError, StorageError, TableClosedError
from .io_stats import IOStats
from .schema import Schema

_MAGIC = b"BOATTBL1"
_HEADER_ALIGN = 4096


def _skip_rows(
    batches: Iterator[np.ndarray], n_rows: int
) -> Iterator[np.ndarray]:
    """Drop the first ``n_rows`` rows of a batch stream."""
    to_skip = n_rows
    for batch in batches:
        if to_skip >= len(batch):
            to_skip -= len(batch)
            continue
        yield batch[to_skip:] if to_skip else batch
        to_skip = 0


def bounded_scan(
    table: "Table",
    batch_rows: int = DEFAULT_BATCH_ROWS,
    start_row: int = 0,
    stop_row: int | None = None,
) -> Iterator[np.ndarray]:
    """Scan ``table`` rows ``[start_row, stop_row)``, as cheaply as it allows.

    Tables that support offset scans (``scan_supports_start_row``) seek
    straight to the offset; anything else is scanned from the top with
    the prefix discarded — correctness is unaffected, but the discarded
    rows are still read (and charged), so resumable builds should live
    on offset-capable tables.  ``stop_row`` (exclusive, ``None`` = table
    end) bounds the scan the same way: natively where the table supports
    it (``scan_supports_stop_row``), by clipping the emitted batches
    otherwise.
    """
    if start_row < 0:
        raise ValueError("start_row must be >= 0")
    if stop_row is not None:
        if getattr(table, "scan_supports_stop_row", False):
            yield from table.scan(
                batch_rows, start_row=start_row, stop_row=stop_row
            )
        else:
            rows_done = start_row
            for batch in bounded_scan(table, batch_rows, start_row):
                take = min(len(batch), stop_row - rows_done)
                if take > 0:
                    yield batch[:take] if take < len(batch) else batch
                    rows_done += take
                if rows_done >= stop_row:
                    return
        return
    if start_row == 0:
        yield from table.scan(batch_rows)
        return
    if getattr(table, "scan_supports_start_row", False):
        yield from table.scan(batch_rows, start_row=start_row)
        return
    yield from _skip_rows(table.scan(batch_rows), start_row)


class Table(ABC):
    """A scannable relation of training records."""

    #: Whether :meth:`scan` accepts a ``start_row`` keyword (seek instead
    #: of re-reading the prefix).  Implementations that can seek set this
    #: to True; :meth:`scan_columns` and resumable-scan helpers consult it.
    scan_supports_start_row = False
    #: Whether :meth:`scan` accepts a ``stop_row`` keyword (bounded scans
    #: truncate at the source instead of clipping emitted batches).
    scan_supports_stop_row = False

    def __init__(self, schema: Schema, io_stats: IOStats | None):
        self._schema = schema
        self._io_stats = io_stats

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def io_stats(self) -> IOStats | None:
        return self._io_stats

    @abstractmethod
    def __len__(self) -> int:
        """Number of records currently in the table."""

    @abstractmethod
    def scan(self, batch_rows: int = DEFAULT_BATCH_ROWS) -> Iterator[np.ndarray]:
        """Yield the table's records as structured-array batches, in order.

        A completed iteration counts as one full scan in the I/O stats.
        """

    def scan_columns(
        self,
        columns: list[str],
        batch_rows: int = DEFAULT_BATCH_ROWS,
        start_row: int = 0,
    ) -> Iterator[np.ndarray]:
        """Scan a column projection (RainForest's temporary projections).

        The default implementation projects each full-scan batch; the
        class label column is always included.  :class:`DiskTable`
        overrides the *charging*: a projection scan models RF-Vertical's
        per-attribute temporary files, so only the projected bytes are
        billed (and throttled), not the full record.

        ``start_row`` resumes a projected scan mid-table.  Tables whose
        ``scan_supports_start_row`` is set seek (the skipped prefix is
        neither read nor charged, and the resumed scan does not count as
        a full scan); the rest fall back to reading and discarding the
        prefix.
        """
        if start_row < 0:
            raise ValueError("start_row must be >= 0")
        fields = self._projection_fields(columns)
        if start_row == 0:
            source = self.scan(batch_rows)
        elif self.scan_supports_start_row:
            source = self.scan(batch_rows, start_row=start_row)
        else:
            source = _skip_rows(self.scan(batch_rows), start_row)
        for batch in source:
            yield batch[fields]

    def _projection_fields(self, columns: list[str]) -> list[str]:
        from .schema import CLASS_COLUMN

        fields = list(dict.fromkeys(columns))
        if CLASS_COLUMN not in fields:
            fields.append(CLASS_COLUMN)
        return fields

    @abstractmethod
    def append(self, batch: np.ndarray) -> None:
        """Append a batch of records (validated against the schema)."""

    def read_all(self, batch_rows: int = DEFAULT_BATCH_ROWS) -> np.ndarray:
        """Materialize the whole table as one structured array."""
        batches = list(self.scan(batch_rows))
        if not batches:
            return self._schema.empty(0)
        return np.concatenate(batches)

    def close(self) -> None:  # noqa: B027 - optional hook
        """Release resources; further use raises :class:`TableClosedError`."""

    def __enter__(self) -> "Table":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class MemoryTable(Table):
    """An in-memory table backed by a list of structured arrays.

    Appends are O(1); :meth:`scan` yields stored chunks re-batched to the
    requested size.  No I/O is charged (this models the paper's "family
    fits in memory" regime) unless an ``io_stats`` is passed explicitly.
    """

    #: Seek-resume parity with :class:`DiskTable`: ``scan(start_row=)``
    #: slices into the stored chunks without touching the prefix, so
    #: :class:`~repro.recovery.RetryingTable` and shard workers behave
    #: identically over in-memory shards in tests.
    scan_supports_start_row = True
    scan_supports_stop_row = True

    def __init__(
        self,
        schema: Schema,
        data: np.ndarray | None = None,
        io_stats: IOStats | None = None,
    ):
        super().__init__(schema, io_stats)
        self._chunks: list[np.ndarray] = []
        self._n_rows = 0
        self._closed = False
        if data is not None:
            self.append(data)

    def _check_open(self) -> None:
        if self._closed:
            raise TableClosedError("MemoryTable is closed")

    def __len__(self) -> int:
        return self._n_rows

    def append(self, batch: np.ndarray) -> None:
        self._check_open()
        self._schema.validate_batch(batch)
        if batch.size == 0:
            return
        self._chunks.append(np.ascontiguousarray(batch))
        self._n_rows += len(batch)
        if self._io_stats is not None:
            self._io_stats.record_write(len(batch), batch.nbytes)

    def scan(
        self,
        batch_rows: int = DEFAULT_BATCH_ROWS,
        start_row: int = 0,
        stop_row: int | None = None,
    ) -> Iterator[np.ndarray]:
        """Yield batches in order, optionally from ``start_row`` on.

        As with :meth:`DiskTable.scan`, a partial scan charges only the
        rows it emits and does not count as a full scan.  ``stop_row``
        (exclusive) truncates the scan; a scan that does not cover the
        whole table is never counted as a full scan.
        """
        self._check_open()
        if batch_rows < 1:
            raise ValueError("batch_rows must be >= 1")
        if start_row < 0:
            raise ValueError("start_row must be >= 0")
        rows_at_start = self._n_rows
        limit = (
            rows_at_start
            if stop_row is None
            else min(stop_row, rows_at_start)
        )
        to_emit = max(limit - start_row, 0)
        pending: list[np.ndarray] = []
        pending_rows = 0
        to_skip = start_row
        for chunk in list(self._chunks):
            if to_emit <= 0:
                break
            if to_skip >= len(chunk):
                to_skip -= len(chunk)
                continue
            start = to_skip
            to_skip = 0
            while start < len(chunk) and to_emit > 0:
                take = min(
                    batch_rows - pending_rows, len(chunk) - start, to_emit
                )
                pending.append(chunk[start : start + take])
                pending_rows += take
                start += take
                to_emit -= take
                if pending_rows == batch_rows:
                    yield self._emit(pending)
                    pending, pending_rows = [], 0
        if pending_rows:
            yield self._emit(pending)
        if (
            self._io_stats is not None
            and start_row == 0
            and limit == rows_at_start
        ):
            self._io_stats.record_full_scan()

    def _emit(self, parts: list[np.ndarray]) -> np.ndarray:
        batch = parts[0] if len(parts) == 1 else np.concatenate(parts)
        if self._io_stats is not None:
            self._io_stats.record_read(len(batch), batch.nbytes)
        return batch

    def compact(self) -> np.ndarray:
        """Merge internal chunks into one array and return it (no charge)."""
        self._check_open()
        if len(self._chunks) > 1:
            self._chunks = [np.concatenate(self._chunks)]
        elif not self._chunks:
            self._chunks = [self._schema.empty(0)]
        return self._chunks[0]

    def close(self) -> None:
        self._chunks.clear()
        self._n_rows = 0
        self._closed = True


class DiskTable(Table):
    """A paged binary file of fixed-width records with a self-describing header.

    Layout: ``BOATTBL1`` magic, a uint32 little-endian length, the schema as
    JSON, zero padding to a 4096-byte boundary, then packed records.  The
    record count is derived from the file size, so appends need no header
    rewrite and a crash mid-append loses at most the trailing partial record
    (detected and reported on open).
    """

    #: ``scan`` accepts ``start_row`` (resumed scans seek instead of
    #: re-reading the prefix) — see :func:`repro.core.cleanup.scan_from`.
    scan_supports_start_row = True
    scan_supports_stop_row = True

    def __init__(
        self,
        path: str | os.PathLike,
        schema: Schema,
        io_stats: IOStats | None = None,
        _existing: bool = False,
        simulated_mbps: float | None = None,
    ):
        super().__init__(schema, io_stats)
        self._path = os.fspath(path)
        self._closed = False
        self._simulated_mbps: float | None = None
        self.set_simulated_throughput(simulated_mbps)
        if _existing:
            self._data_offset = self._read_header_offset()
        else:
            self._data_offset = self._write_header()
        self._n_rows = self._derive_row_count()

    def set_simulated_throughput(self, mbps: float | None) -> None:
        """Throttle every read/write to model a sequential-I/O device.

        The paper's 1999 testbed was I/O-bound: a 400 MB training file on
        a ~10 MB/s disk made each scan cost ~40 s, which is what BOAT's
        two-scan guarantee buys.  Modern page-cached NVMe hides that cost
        entirely, so benchmarks can opt into a simulated throughput (in
        MB/s); ``None`` or 0 disables the simulation.
        """
        if mbps is not None and mbps <= 0:
            mbps = None
        self._simulated_mbps = mbps

    def _throttle(self, nbytes: int) -> None:
        if self._simulated_mbps is not None and nbytes > 0:
            time.sleep(nbytes / (self._simulated_mbps * 1e6))

    # -- constructors --------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str | os.PathLike,
        schema: Schema,
        io_stats: IOStats | None = None,
    ) -> "DiskTable":
        """Create a new, empty table file (truncating any existing file)."""
        return cls(path, schema, io_stats)

    @classmethod
    def open(
        cls,
        path: str | os.PathLike,
        io_stats: IOStats | None = None,
        simulated_mbps: float | None = None,
    ) -> "DiskTable":
        """Open an existing table file, reading its schema from the header."""
        schema = cls._read_schema(path)
        return cls(
            path, schema, io_stats, _existing=True, simulated_mbps=simulated_mbps
        )

    @staticmethod
    def _read_schema(path: str | os.PathLike) -> Schema:
        with open(path, "rb") as fh:
            magic = fh.read(len(_MAGIC))
            if magic != _MAGIC:
                raise StorageError(f"{path}: not a BOAT table (bad magic {magic!r})")
            (json_len,) = struct.unpack("<I", fh.read(4))
            try:
                return Schema.from_json(fh.read(json_len).decode("utf-8"))
            except (UnicodeDecodeError, SchemaError) as exc:
                raise StorageError(f"{path}: corrupt schema header: {exc}") from exc

    # -- header handling -----------------------------------------------------

    def _write_header(self) -> int:
        payload = self._schema.to_json().encode("utf-8")
        header = _MAGIC + struct.pack("<I", len(payload)) + payload
        offset = -(-len(header) // _HEADER_ALIGN) * _HEADER_ALIGN
        with open(self._path, "wb") as fh:
            fh.write(header.ljust(offset, b"\0"))
        return offset

    def _read_header_offset(self) -> int:
        with open(self._path, "rb") as fh:
            fh.seek(len(_MAGIC))
            (json_len,) = struct.unpack("<I", fh.read(4))
        header_len = len(_MAGIC) + 4 + json_len
        return -(-header_len // _HEADER_ALIGN) * _HEADER_ALIGN

    def _derive_row_count(self) -> int:
        data_bytes = os.path.getsize(self._path) - self._data_offset
        if data_bytes < 0:
            raise StorageError(f"{self._path}: truncated header")
        rec = self._schema.record_size
        if data_bytes % rec:
            raise StorageError(
                f"{self._path}: {data_bytes} data bytes is not a multiple of "
                f"record size {rec} (torn append?)"
            )
        return data_bytes // rec

    # -- Table interface -------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise TableClosedError(f"DiskTable {self._path} is closed")

    @property
    def path(self) -> str:
        return self._path

    def __len__(self) -> int:
        return self._n_rows

    def append(self, batch: np.ndarray) -> None:
        self._check_open()
        self._schema.validate_batch(batch)
        if batch.size == 0:
            return
        raw = np.ascontiguousarray(batch).tobytes()
        with open(self._path, "ab") as fh:
            fh.write(raw)
        self._n_rows += len(batch)
        self._throttle(len(raw))
        if self._io_stats is not None:
            self._io_stats.record_write(len(batch), len(raw))

    def scan(
        self,
        batch_rows: int = DEFAULT_BATCH_ROWS,
        start_row: int = 0,
        stop_row: int | None = None,
    ) -> Iterator[np.ndarray]:
        """Yield batches in record order, optionally from ``start_row`` on.

        A partial scan (``start_row > 0`` — a resumed cleanup scan
        continuing from a checkpoint offset — or ``stop_row`` short of
        the end, used by :class:`ShardedTable` to grid-align shard
        boundaries) charges only the rows it actually reads and does
        *not* count as a full scan.
        """
        self._check_open()
        if batch_rows < 1:
            raise ValueError("batch_rows must be >= 1")
        if start_row < 0:
            raise ValueError("start_row must be >= 0")
        dtype = self._schema.dtype()
        rec = dtype.itemsize
        # Snapshot the row count so concurrent appends during a scan
        # (which the algorithms never do, but tests might) see a stable view.
        rows_at_start = self._n_rows
        limit = (
            rows_at_start
            if stop_row is None
            else min(stop_row, rows_at_start)
        )
        remaining = max(limit - start_row, 0)
        with open(self._path, "rb", buffering=io.DEFAULT_BUFFER_SIZE) as fh:
            fh.seek(self._data_offset + start_row * rec)
            while remaining > 0:
                take = min(batch_rows, remaining)
                raw = fh.read(take * rec)
                if len(raw) != take * rec:
                    raise StorageError(
                        f"{self._path}: short read ({len(raw)} of {take * rec} bytes)"
                    )
                batch = np.frombuffer(raw, dtype=dtype)
                remaining -= take
                self._throttle(len(raw))
                if self._io_stats is not None:
                    self._io_stats.record_read(len(batch), len(raw))
                yield batch
        if (
            self._io_stats is not None
            and start_row == 0
            and limit == rows_at_start
        ):
            self._io_stats.record_full_scan()

    def scan_columns(
        self,
        columns: list[str],
        batch_rows: int = DEFAULT_BATCH_ROWS,
        start_row: int = 0,
        stop_row: int | None = None,
    ) -> Iterator[np.ndarray]:
        """Projection scan billed at projected width (see base docstring).

        Models RF-Vertical reading a temporary per-attribute projection
        file: the underlying row file is read, but the charge (and the
        simulated-device throttle) covers only the projected columns.
        Like :meth:`scan`, ``start_row > 0`` seeks past the prefix
        without reading or charging it, ``stop_row`` truncates the scan,
        and a scan not covering the whole table is not a full scan.
        """
        self._check_open()
        if start_row < 0:
            raise ValueError("start_row must be >= 0")
        fields = self._projection_fields(columns)
        dtype = self._schema.dtype()
        projected_bytes = sum(dtype[name].itemsize for name in fields)
        full_bytes = dtype.itemsize
        rows_at_start = self._n_rows
        limit = (
            rows_at_start
            if stop_row is None
            else min(stop_row, rows_at_start)
        )
        remaining = max(limit - start_row, 0)
        with open(self._path, "rb", buffering=io.DEFAULT_BUFFER_SIZE) as fh:
            fh.seek(self._data_offset + start_row * full_bytes)
            while remaining > 0:
                take = min(batch_rows, remaining)
                raw = fh.read(take * full_bytes)
                if len(raw) != take * full_bytes:
                    raise StorageError(
                        f"{self._path}: short read in projection scan"
                    )
                batch = np.frombuffer(raw, dtype=dtype)[fields]
                remaining -= take
                self._throttle(take * projected_bytes)
                if self._io_stats is not None:
                    self._io_stats.record_read(take, take * projected_bytes)
                yield batch
        if (
            self._io_stats is not None
            and start_row == 0
            and limit == rows_at_start
        ):
            self._io_stats.record_full_scan()

    def read_slice(
        self, start: int, stop: int, io_stats: IOStats | None = None
    ) -> np.ndarray:
        """Read records ``[start, stop)`` by offset (charged as reads).

        ``io_stats`` redirects the charge away from the table's shared
        instance — parallel scan workers each charge a private counter
        and merge it back in deterministic order.  Each call opens its
        own file handle, so concurrent slice reads are safe.
        """
        self._check_open()
        if not 0 <= start <= stop <= self._n_rows:
            raise IndexError(f"slice [{start}, {stop}) out of range 0..{self._n_rows}")
        dtype = self._schema.dtype()
        rec = dtype.itemsize
        with open(self._path, "rb") as fh:
            fh.seek(self._data_offset + start * rec)
            raw = fh.read((stop - start) * rec)
        if len(raw) != (stop - start) * rec:
            raise StorageError(f"{self._path}: short read in read_slice")
        batch = np.frombuffer(raw, dtype=dtype)
        self._throttle(len(raw))
        charge = io_stats if io_stats is not None else self._io_stats
        if charge is not None:
            charge.record_read(len(batch), len(raw))
        return batch

    def close(self) -> None:
        self._closed = True

    def delete_file(self) -> None:
        """Close the table and remove its backing file."""
        self.close()
        try:
            os.remove(self._path)
        except FileNotFoundError:
            pass


def write_json_sidecar(path: str | os.PathLike, metadata: dict) -> None:
    """Write experiment metadata next to a table file (``<path>.meta.json``)."""
    with open(f"{os.fspath(path)}.meta.json", "w", encoding="utf-8") as fh:
        json.dump(metadata, fh, indent=2, sort_keys=True)


def read_json_sidecar(path: str | os.PathLike) -> dict:
    """Read metadata written by :func:`write_json_sidecar`."""
    with open(f"{os.fspath(path)}.meta.json", encoding="utf-8") as fh:
        return json.load(fh)
