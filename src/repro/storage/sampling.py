"""Random samples from training databases.

BOAT's sampling phase needs a uniform random sample D' from the training
database D.  Two strategies are provided:

* :func:`sample_known_size` — exact uniform sampling without replacement
  when the table knows its cardinality (our tables do).  One scan.
* :func:`reservoir_sample` — Vitter's reservoir algorithm over a stream of
  batches whose total size is unknown in advance.  This is what the paper's
  data-warehouse scenario needs (the training database is a query result
  that is never materialized); [Olk93] shows such samples are obtainable
  for a broad class of queries.

Both charge a full scan to the table's I/O stats, which is exactly how the
paper accounts for BOAT's sampling phase.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from .schema import Schema
from .table import Table


def choose_sample_indices(
    n: int, k: int, rng: np.random.Generator
) -> np.ndarray | None:
    """The row indices :func:`sample_known_size` would gather, sorted.

    Returns ``None`` when ``k >= n`` (the whole table is the sample and
    no randomness is consumed — the ``read_all`` path).  Factoring the
    draw out of the gather is what lets a sharded build coordinator make
    the *identical* draw centrally and ship each shard only its index
    range, so the concatenated per-shard gathers reproduce the
    single-table sample byte for byte.
    """
    if k >= n:
        return None
    return np.sort(rng.choice(n, size=k, replace=False))


def gather_rows(
    table: Table, chosen: np.ndarray, batch_rows: int = 65536
) -> np.ndarray:
    """Gather the rows at sorted indices ``chosen`` in one sequential scan."""
    out = table.schema.empty(len(chosen))
    filled = 0
    offset = 0
    for batch in table.scan(batch_rows):
        lo = np.searchsorted(chosen, offset, side="left")
        hi = np.searchsorted(chosen, offset + len(batch), side="left")
        if hi > lo:
            local = chosen[lo:hi] - offset
            out[filled : filled + (hi - lo)] = batch[local]
            filled += hi - lo
        offset += len(batch)
        # The scan generator must run to completion to register the full
        # scan; tables are cheap to finish and this keeps accounting honest.
    return out


def sample_known_size(
    table: Table, k: int, rng: np.random.Generator, batch_rows: int = 65536
) -> np.ndarray:
    """Uniform sample of ``min(k, len(table))`` records, without replacement.

    Chooses target row indices up front and gathers them in one sequential
    scan, so the I/O cost is one full scan regardless of ``k``.
    """
    n = len(table)
    if k <= 0:
        return table.schema.empty(0)
    chosen = choose_sample_indices(n, k, rng)
    if chosen is None:
        return table.read_all(batch_rows)
    return gather_rows(table, chosen, batch_rows)


def reservoir_sample(
    batches: Iterable[np.ndarray], k: int, schema: Schema, rng: np.random.Generator
) -> np.ndarray:
    """Uniform sample of up to ``k`` records from a stream of unknown size.

    Batch-oriented reservoir sampling: each incoming record replaces a
    random reservoir slot with the classical ``k / seen`` probability.
    Returns fewer than ``k`` records iff the stream is shorter than ``k``.
    """
    if k <= 0:
        return schema.empty(0)
    reservoir = schema.empty(k)
    filled = 0
    seen = 0
    for batch in batches:
        if batch.size == 0:
            continue
        i = 0
        # Fill the reservoir with the first k records verbatim.
        if filled < k:
            take = min(k - filled, len(batch))
            reservoir[filled : filled + take] = batch[:take]
            filled += take
            seen += take
            i = take
        m = len(batch) - i
        if m > 0:
            # Record j (0-based within the remainder) is the (seen+j+1)-th
            # overall; it enters the reservoir with probability k/(seen+j+1).
            positions = seen + 1 + np.arange(m)
            accept = rng.random(m) < (k / positions)
            idx = np.flatnonzero(accept)
            if idx.size:
                slots = rng.integers(0, k, size=idx.size)
                # Later records must win conflicts on the same slot, which
                # assignment in stream order gives us for free.
                reservoir[slots] = batch[i + idx]
            seen += m
    return reservoir[:filled].copy()


def sample_table(
    table: Table, k: int, rng: np.random.Generator, batch_rows: int = 65536
) -> np.ndarray:
    """Sample D' from a table, choosing the best strategy available."""
    return sample_known_size(table, k, rng, batch_rows)


def bootstrap_resample(
    data: np.ndarray, size: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample ``size`` records from in-memory ``data`` *with* replacement."""
    if len(data) == 0:
        raise ValueError("cannot bootstrap-resample an empty sample")
    idx = rng.integers(0, len(data), size=size)
    return data[idx]


def split_into_chunks(data: np.ndarray, chunk_rows: int) -> Iterator[np.ndarray]:
    """Partition an array into consecutive chunks of at most ``chunk_rows``."""
    if chunk_rows < 1:
        raise ValueError("chunk_rows must be >= 1")
    for start in range(0, len(data), chunk_rows):
        yield data[start : start + chunk_rows]
