"""CSV import/export for training tables.

Real deployments rarely start from binary tables; these helpers bridge
CSV files to the library's schema'd tables.  Categorical columns may be
arbitrary strings in the CSV — codes are assigned (or validated) through
an explicit :class:`CategoryEncoder` so encodings survive round trips
and train/serve skew is detectable.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from ..exceptions import SchemaError, StorageError
from .schema import CLASS_COLUMN, Attribute, Schema
from .table import Table


@dataclass
class CategoryEncoder:
    """String-category to code mappings for one schema.

    Attributes:
        categories: per categorical attribute (and the class label), the
            list of string values in code order.
    """

    categories: dict[str, list[str]] = field(default_factory=dict)

    def encode(self, column: str, values: list[str], domain: int | None) -> np.ndarray:
        mapping = self.categories.setdefault(column, [])
        index = {v: i for i, v in enumerate(mapping)}
        out = np.empty(len(values), dtype=np.int32)
        for i, value in enumerate(values):
            code = index.get(value)
            if code is None:
                if domain is not None and len(mapping) >= domain:
                    raise StorageError(
                        f"column {column!r}: category {value!r} exceeds the "
                        f"declared domain of {domain}"
                    )
                code = len(mapping)
                mapping.append(value)
                index[value] = code
            out[i] = code
        return out

    def decode(self, column: str, codes: np.ndarray) -> list[str]:
        mapping = self.categories.get(column)
        if mapping is None:
            raise StorageError(f"no categories recorded for column {column!r}")
        try:
            return [mapping[int(c)] for c in codes]
        except IndexError:
            raise StorageError(
                f"column {column!r}: code out of recorded range"
            ) from None

    def to_dict(self) -> dict:
        return {"categories": self.categories}

    @classmethod
    def from_dict(cls, data: dict) -> "CategoryEncoder":
        return cls(categories={k: list(v) for k, v in data["categories"].items()})


def read_csv(
    path: str,
    schema: Schema,
    table: Table,
    encoder: CategoryEncoder | None = None,
    batch_rows: int = 8192,
    label_column: str | None = None,
) -> CategoryEncoder:
    """Load a headered CSV file into ``table`` (appending).

    Args:
        path: the CSV file; its header must contain every schema
            attribute plus the label column.
        schema: the target training schema.
        table: destination (must share the schema).
        encoder: category mappings to extend/validate; a fresh one is
            created when omitted.  Returned either way.
        label_column: CSV header name of the class label (defaults to
            the reserved ``class_label``).
    """
    if table.schema != schema:
        raise SchemaError("table schema does not match the requested schema")
    encoder = encoder or CategoryEncoder()
    label_column = label_column or CLASS_COLUMN
    with open(path, newline="", encoding="utf-8") as fh:
        reader = csv.DictReader(fh)
        missing = {a.name for a in schema.attributes} - set(reader.fieldnames or [])
        if label_column not in (reader.fieldnames or []):
            missing.add(label_column)
        if missing:
            raise StorageError(f"CSV {path}: missing columns {sorted(missing)}")
        for rows in _chunks(reader, batch_rows):
            batch = schema.empty(len(rows))
            for attr in schema.attributes:
                raw = [row[attr.name] for row in rows]
                if attr.is_numerical:
                    try:
                        batch[attr.name] = [float(v) for v in raw]
                    except ValueError as exc:
                        raise StorageError(
                            f"CSV {path}: non-numeric value in {attr.name!r}: {exc}"
                        ) from exc
                else:
                    batch[attr.name] = encoder.encode(
                        attr.name, raw, attr.domain_size
                    )
            batch[CLASS_COLUMN] = encoder.encode(
                CLASS_COLUMN, [row[label_column] for row in rows], schema.n_classes
            )
            table.append(batch)
    return encoder


def write_csv(
    path: str,
    table: Table,
    encoder: CategoryEncoder | None = None,
    batch_rows: int = 8192,
) -> None:
    """Write a table to a headered CSV file.

    With an ``encoder``, categorical codes are decoded back to their
    strings; without one they are written as integers.
    """
    schema = table.schema
    header = [a.name for a in schema.attributes] + [CLASS_COLUMN]
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        for batch in table.scan(batch_rows):
            columns: list[list] = []
            for attr in schema.attributes:
                values = batch[attr.name]
                if attr.is_numerical:
                    columns.append([repr(float(v)) for v in values])
                elif encoder is not None and attr.name in encoder.categories:
                    columns.append(encoder.decode(attr.name, values))
                else:
                    columns.append([str(int(v)) for v in values])
            labels = batch[CLASS_COLUMN]
            if encoder is not None and CLASS_COLUMN in encoder.categories:
                columns.append(encoder.decode(CLASS_COLUMN, labels))
            else:
                columns.append([str(int(v)) for v in labels])
            writer.writerows(zip(*columns))


def infer_schema(
    path: str,
    label_column: str,
    max_categories: int = 32,
    sample_rows: int = 10_000,
) -> Schema:
    """Guess a training schema from a CSV sample.

    Columns whose sampled values all parse as floats become numerical;
    the rest become categorical with the observed distinct-value count
    (capped at ``max_categories``, beyond which loading fails loudly
    rather than silently miscoding).
    """
    with open(path, newline="", encoding="utf-8") as fh:
        reader = csv.DictReader(fh)
        if not reader.fieldnames or label_column not in reader.fieldnames:
            raise StorageError(
                f"CSV {path}: label column {label_column!r} not found"
            )
        samples: dict[str, list[str]] = {name: [] for name in reader.fieldnames}
        for i, row in enumerate(reader):
            if i >= sample_rows:
                break
            for name, value in row.items():
                samples[name].append(value)
    attrs = []
    for name in samples:
        if name == label_column:
            continue
        values = samples[name]
        if not values:
            raise StorageError(f"CSV {path}: no data rows")
        if _all_float(values):
            attrs.append(Attribute.numerical(name))
        else:
            distinct = len(set(values))
            if distinct > max_categories:
                raise StorageError(
                    f"CSV {path}: column {name!r} has {distinct} distinct "
                    f"non-numeric values (> {max_categories}); not a "
                    f"plausible categorical attribute"
                )
            attrs.append(Attribute.categorical(name, max(distinct, 2)))
    n_classes = max(len(set(samples[label_column])), 2)
    return Schema(attrs, n_classes=n_classes)


def _all_float(values: Iterable[str]) -> bool:
    for value in values:
        try:
            float(value)
        except ValueError:
            return False
    return True


def _chunks(reader: Iterator[dict], size: int) -> Iterator[list[dict]]:
    chunk: list[dict] = []
    for row in reader:
        chunk.append(row)
        if len(chunk) == size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk
