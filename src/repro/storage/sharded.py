"""Sharded storage: one logical table partitioned into K `DiskTable` shards.

A shard directory holds ``shard-0000.tbl`` … ``shard-{K-1:04d}.tbl`` plus a
``manifest.json`` recording the placement strategy, per-shard row counts
and a SHA-256 digest of the schema.  :func:`partition_table` writes such a
directory from any :class:`~repro.storage.table.Table`;
:class:`ShardedTable` opens one and implements the full ``Table`` scan API
over the concatenation of its shards, so every existing algorithm
(reference builder, BOAT, RainForest, QUEST) reads it unmodified.

Two placements:

* ``range`` — contiguous row ranges in the original order.  The global
  scan order is *identical* to the source table's, which is what makes a
  sharded BOAT build byte-identical to the single-table build (see
  ``docs/SHARDING.md``).
* ``hash`` — rows routed by an FNV-1a hash of their raw bytes, modelling
  a pre-existing hash-distributed warehouse.  Scans are deterministic
  (shard order, then shard-local order) but permuted relative to the
  source table.

Scan batches are re-sliced across shard boundaries to exactly the
requested ``batch_rows`` (only the final batch may be short), so even
algorithms whose floating-point accumulation order depends on batch
boundaries (QUEST sufficient statistics) see the byte-identical batch
stream a single :class:`DiskTable` would produce.

I/O accounting: every shard charges a private :class:`IOStats`; a scan
merges each shard's delta into the experiment's shared instance (via the
existing :meth:`IOStats.merge`) as the shard completes, with per-shard
``full_scans`` kept out of the merged delta — the experiment counts one
logical full scan per completed sharded scan, while the private per-shard
counters retain the per-shard scan counts the two-scan invariant tests
assert on.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..config import DEFAULT_BATCH_ROWS
from ..exceptions import StorageError, TableClosedError
from .io_stats import IOStats
from .schema import Schema
from .spill import _rebatch
from .table import DiskTable, Table

MANIFEST_FILE = "manifest.json"
MANIFEST_VERSION = 1
PLACEMENTS = ("range", "hash")

_FNV_OFFSET = np.uint32(2166136261)
_FNV_PRIME = np.uint32(16777619)


def schema_digest(schema: Schema) -> str:
    """SHA-256 of the schema's canonical JSON form."""
    return hashlib.sha256(schema.to_json().encode("utf-8")).hexdigest()


def _fnv1a_rows(batch: np.ndarray) -> np.ndarray:
    """Vectorized FNV-1a over each record's raw bytes (uint32 per row).

    Platform-independent (fixed-width little-endian records, explicit
    uint32 wraparound), so a hash-placed shard set is reproducible
    anywhere.
    """
    rec = batch.dtype.itemsize
    raw = np.frombuffer(
        np.ascontiguousarray(batch).tobytes(), dtype=np.uint8
    ).reshape(len(batch), rec)
    h = np.full(len(batch), _FNV_OFFSET, dtype=np.uint32)
    for col in range(rec):
        h = (h ^ raw[:, col]) * _FNV_PRIME
    return h


def range_offsets(n_rows: int, n_shards: int) -> list[int]:
    """Shard boundaries for ``range`` placement: K near-equal spans.

    The first ``n_rows % n_shards`` shards get one extra row; with
    ``n_shards > n_rows`` the trailing shards are empty (a legal,
    tested edge case).
    """
    base, extra = divmod(n_rows, n_shards)
    offsets = [0]
    for i in range(n_shards):
        offsets.append(offsets[-1] + base + (1 if i < extra else 0))
    return offsets


@dataclass(frozen=True)
class ShardManifest:
    """The shard directory's metadata (``manifest.json``)."""

    placement: str
    schema_digest: str
    shard_files: tuple[str, ...]
    shard_rows: tuple[int, ...]

    @property
    def n_shards(self) -> int:
        return len(self.shard_files)

    @property
    def total_rows(self) -> int:
        return sum(self.shard_rows)

    def to_dict(self) -> dict:
        return {
            "version": MANIFEST_VERSION,
            "placement": self.placement,
            "schema_digest": self.schema_digest,
            "shards": [
                {"file": name, "rows": rows}
                for name, rows in zip(self.shard_files, self.shard_rows)
            ],
        }

    @classmethod
    def from_dict(cls, data: dict, where: str) -> "ShardManifest":
        try:
            if data["version"] != MANIFEST_VERSION:
                raise StorageError(
                    f"{where}: unsupported shard manifest version "
                    f"{data['version']!r}"
                )
            placement = data["placement"]
            shards = data["shards"]
            manifest = cls(
                placement=placement,
                schema_digest=data["schema_digest"],
                shard_files=tuple(entry["file"] for entry in shards),
                shard_rows=tuple(int(entry["rows"]) for entry in shards),
            )
        except (KeyError, TypeError) as exc:
            raise StorageError(f"{where}: malformed shard manifest: {exc}")
        if placement not in PLACEMENTS:
            raise StorageError(f"{where}: unknown placement {placement!r}")
        if manifest.n_shards == 0:
            raise StorageError(f"{where}: shard manifest lists no shards")
        return manifest

    def save(self, directory: str | os.PathLike) -> str:
        path = os.path.join(os.fspath(directory), MANIFEST_FILE)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, directory: str | os.PathLike) -> "ShardManifest":
        path = os.path.join(os.fspath(directory), MANIFEST_FILE)
        try:
            with open(path, encoding="utf-8") as fh:
                data = json.load(fh)
        except FileNotFoundError:
            raise StorageError(
                f"{directory}: not a shard directory (no {MANIFEST_FILE})"
            )
        except json.JSONDecodeError as exc:
            raise StorageError(f"{path}: corrupt shard manifest: {exc}")
        return cls.from_dict(data, where=os.fspath(directory))


def shard_file_name(shard_id: int) -> str:
    return f"shard-{shard_id:04d}.tbl"


def partition_table(
    table: Table,
    directory: str | os.PathLike,
    n_shards: int,
    placement: str = "range",
    batch_rows: int = DEFAULT_BATCH_ROWS,
    io_stats: IOStats | None = None,
) -> ShardManifest:
    """Partition ``table`` into ``n_shards`` shard files under ``directory``.

    One full scan of the source (charged to the source's own stats);
    shard writes are charged to ``io_stats``.  Returns the written
    manifest; open the result with :meth:`ShardedTable.open`.
    """
    if n_shards < 1:
        raise StorageError("n_shards must be >= 1")
    if placement not in PLACEMENTS:
        raise StorageError(
            f"unknown placement {placement!r} (expected one of {PLACEMENTS})"
        )
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    names = [shard_file_name(i) for i in range(n_shards)]
    shards = [
        DiskTable.create(os.path.join(directory, name), table.schema, io_stats)
        for name in names
    ]
    try:
        if placement == "range":
            offsets = range_offsets(len(table), n_shards)
            shard_id = 0
            row = 0
            for batch in table.scan(batch_rows):
                start = 0
                while start < len(batch):
                    while row >= offsets[shard_id + 1]:
                        shard_id += 1
                    take = min(offsets[shard_id + 1] - row, len(batch) - start)
                    shards[shard_id].append(batch[start : start + take])
                    start += take
                    row += take
        else:
            for batch in table.scan(batch_rows):
                dest = _fnv1a_rows(batch) % np.uint32(n_shards)
                for shard_id in range(n_shards):
                    rows = batch[dest == shard_id]
                    if rows.size:
                        shards[shard_id].append(rows)
        manifest = ShardManifest(
            placement=placement,
            schema_digest=schema_digest(table.schema),
            shard_files=tuple(names),
            shard_rows=tuple(len(s) for s in shards),
        )
        manifest.save(directory)
    finally:
        for shard in shards:
            shard.close()
    return manifest


class ShardedTable(Table):
    """K :class:`DiskTable` shards scanned as one logical table.

    Read-only: the shard set is the durable training database; mutating
    it would invalidate the manifest's row counts.  Open with
    :meth:`open`; each shard carries a private :class:`IOStats`
    (:attr:`shard_io_stats`) whose deltas are merged into the shared
    experiment instance as scans progress.
    """

    scan_supports_start_row = True

    def __init__(
        self,
        directory: str,
        manifest: ShardManifest,
        shards: list[DiskTable],
        shard_ios: list[IOStats],
        io_stats: IOStats | None,
    ):
        super().__init__(shards[0].schema, io_stats)
        self._directory = directory
        self._manifest = manifest
        self._shards = shards
        self._shard_ios = shard_ios
        self._closed = False

    @classmethod
    def open(
        cls,
        directory: str | os.PathLike,
        io_stats: IOStats | None = None,
        simulated_mbps: float | None = None,
    ) -> "ShardedTable":
        """Open a shard directory, validating every shard against the manifest.

        Raises :class:`StorageError` (a :class:`~repro.exceptions.ReproError`)
        when a shard's schema digest does not match the manifest or a
        shard's row count drifted from the recorded one.
        """
        directory = os.fspath(directory)
        manifest = ShardManifest.load(directory)
        shards: list[DiskTable] = []
        shard_ios: list[IOStats] = []
        try:
            for shard_id, (name, rows) in enumerate(
                zip(manifest.shard_files, manifest.shard_rows)
            ):
                shard_io = IOStats()
                try:
                    shard = DiskTable.open(
                        os.path.join(directory, name),
                        shard_io,
                        simulated_mbps=simulated_mbps,
                    )
                except OSError as exc:
                    raise StorageError(
                        f"{directory}: shard {shard_id} ({name}) cannot be "
                        f"opened: {exc}"
                    ) from exc
                shards.append(shard)
                shard_ios.append(shard_io)
                digest = schema_digest(shard.schema)
                if digest != manifest.schema_digest:
                    raise StorageError(
                        f"{directory}: shard {shard_id} ({name}) schema digest "
                        f"{digest[:12]}… does not match manifest "
                        f"{manifest.schema_digest[:12]}… — shard set and "
                        f"manifest disagree on the schema"
                    )
                if len(shard) != rows:
                    raise StorageError(
                        f"{directory}: shard {shard_id} ({name}) holds "
                        f"{len(shard)} rows but the manifest records {rows}"
                    )
        except BaseException:
            for shard in shards:
                shard.close()
            raise
        return cls(directory, manifest, shards, shard_ios, io_stats)

    # -- introspection -------------------------------------------------------

    @property
    def directory(self) -> str:
        return self._directory

    @property
    def manifest(self) -> ShardManifest:
        return self._manifest

    @property
    def n_shards(self) -> int:
        return self._manifest.n_shards

    @property
    def shard_paths(self) -> list[str]:
        return [
            os.path.join(self._directory, name)
            for name in self._manifest.shard_files
        ]

    @property
    def shard_io_stats(self) -> list[IOStats]:
        """Each shard's private counters (per-shard scan-count invariants)."""
        return list(self._shard_ios)

    @property
    def shard_tables(self) -> list[DiskTable]:
        return list(self._shards)

    # -- Table interface -----------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise TableClosedError(f"ShardedTable {self._directory} is closed")

    def __len__(self) -> int:
        return self._manifest.total_rows

    def append(self, batch: np.ndarray) -> None:
        raise StorageError(
            f"ShardedTable {self._directory} is read-only; re-partition the "
            f"source table to change the shard set"
        )

    def _charge(self, shard_io: IOStats, before: IOStats) -> None:
        """Merge one shard's scan delta into the experiment counters.

        ``full_scans`` stays per-shard: the experiment instance counts
        logical sharded scans, the private instances count physical ones.
        """
        if self._io_stats is None:
            return
        delta = shard_io.delta_since(before)
        delta.full_scans = 0
        self._io_stats.merge(delta)

    def _shard_stream(
        self, batch_rows: int, start_row: int, columns: list[str] | None
    ) -> Iterator[np.ndarray]:
        """Yield shard chunks aligned to the global ``batch_rows`` grid.

        A shard boundary rarely falls on a multiple of ``batch_rows``, so
        each shard scan is split in two: a *head* sub-scan of exactly the
        rows needed to complete the batch left unfinished by the previous
        shard, then a tail sub-scan whose chunks land on the global grid.
        Downstream, :func:`_rebatch` passes every grid-aligned chunk
        through as a zero-copy view and only concatenates the one
        straddling batch per shard edge (at most K-1 per scan) — without
        alignment every batch after the first shard edge is a two-piece
        copy, which is what collapsed multi-shard scan throughput.
        """
        offset = 0
        for shard, shard_io in zip(self._shards, self._shard_ios):
            n = len(shard)
            offset_next = offset + n
            if n == 0 or start_row >= offset_next:
                offset = offset_next
                continue
            local_start = max(start_row - offset, 0)
            # Rows needed to complete the current (partial) global batch.
            head = min(
                -(offset + local_start - start_row) % batch_rows,
                n - local_start,
            )
            before = shard_io.snapshot()
            if columns is None:
                if head:
                    yield from shard.scan(
                        batch_rows,
                        start_row=local_start,
                        stop_row=local_start + head,
                    )
                if local_start + head < n:
                    yield from shard.scan(
                        batch_rows, start_row=local_start + head
                    )
            else:
                if head:
                    yield from shard.scan_columns(
                        columns,
                        batch_rows,
                        start_row=local_start,
                        stop_row=local_start + head,
                    )
                if local_start + head < n:
                    yield from shard.scan_columns(
                        columns, batch_rows, start_row=local_start + head
                    )
            # When the scan is split, neither sub-scan covers the shard
            # in one call, so neither records the physical full scan the
            # per-shard two-scan invariant asserts on; record it here
            # when the whole shard was in fact read.
            if local_start == 0 and 0 < head < n:
                shard_io.record_full_scan()
            self._charge(shard_io, before)
            offset = offset_next

    def scan(
        self, batch_rows: int = DEFAULT_BATCH_ROWS, start_row: int = 0
    ) -> Iterator[np.ndarray]:
        """Scan shards in manifest order as one stream of exact batches."""
        self._check_open()
        if batch_rows < 1:
            raise ValueError("batch_rows must be >= 1")
        if start_row < 0:
            raise ValueError("start_row must be >= 0")
        yield from _rebatch(
            self._shard_stream(batch_rows, start_row, None), batch_rows
        )
        if self._io_stats is not None and start_row == 0:
            self._io_stats.record_full_scan()

    def scan_columns(
        self,
        columns: list[str],
        batch_rows: int = DEFAULT_BATCH_ROWS,
        start_row: int = 0,
    ) -> Iterator[np.ndarray]:
        """Projection scan delegated shard-by-shard (projected-width billing)."""
        self._check_open()
        if batch_rows < 1:
            raise ValueError("batch_rows must be >= 1")
        if start_row < 0:
            raise ValueError("start_row must be >= 0")
        fields = self._projection_fields(columns)
        yield from _rebatch(
            self._shard_stream(batch_rows, start_row, fields), batch_rows
        )
        if self._io_stats is not None and start_row == 0:
            self._io_stats.record_full_scan()

    def close(self) -> None:
        self._closed = True
        for shard in self._shards:
            shard.close()
