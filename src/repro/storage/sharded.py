"""Sharded storage: one logical table partitioned into K `DiskTable` shards.

A shard directory holds ``shard-0000.tbl`` … ``shard-{K-1:04d}.tbl`` plus a
``manifest.json`` recording the placement strategy, per-shard row counts
and a SHA-256 digest of the schema.  :func:`partition_table` writes such a
directory from any :class:`~repro.storage.table.Table`;
:class:`ShardedTable` opens one and implements the full ``Table`` scan API
over the concatenation of its shards, so every existing algorithm
(reference builder, BOAT, RainForest, QUEST) reads it unmodified.

Two placements:

* ``range`` — contiguous row ranges in the original order.  The global
  scan order is *identical* to the source table's, which is what makes a
  sharded BOAT build byte-identical to the single-table build (see
  ``docs/SHARDING.md``).
* ``hash`` — rows routed by an FNV-1a hash of their raw bytes, modelling
  a pre-existing hash-distributed warehouse.  Scans are deterministic
  (shard order, then shard-local order) but permuted relative to the
  source table.

Scan batches are re-sliced across shard boundaries to exactly the
requested ``batch_rows`` (only the final batch may be short), so even
algorithms whose floating-point accumulation order depends on batch
boundaries (QUEST sufficient statistics) see the byte-identical batch
stream a single :class:`DiskTable` would produce.

I/O accounting: every shard charges a private :class:`IOStats`; a scan
merges each shard's delta into the experiment's shared instance (via the
existing :meth:`IOStats.merge`) as the shard completes, with per-shard
``full_scans`` kept out of the merged delta — the experiment counts one
logical full scan per completed sharded scan, while the private per-shard
counters retain the per-shard scan counts the two-scan invariant tests
assert on.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import shutil
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..config import DEFAULT_BATCH_ROWS
from ..exceptions import StorageError, TableClosedError
from .io_stats import IOStats
from .schema import Schema
from .spill import _rebatch
from .table import DiskTable, Table

MANIFEST_FILE = "manifest.json"
MANIFEST_VERSION = 1
PLACEMENTS = ("range", "hash")

_FNV_OFFSET = np.uint32(2166136261)
_FNV_PRIME = np.uint32(16777619)


def schema_digest(schema: Schema) -> str:
    """SHA-256 of the schema's canonical JSON form."""
    return hashlib.sha256(schema.to_json().encode("utf-8")).hexdigest()


def _fnv1a_rows(batch: np.ndarray) -> np.ndarray:
    """Vectorized FNV-1a over each record's raw bytes (uint32 per row).

    Platform-independent (fixed-width little-endian records, explicit
    uint32 wraparound), so a hash-placed shard set is reproducible
    anywhere.
    """
    rec = batch.dtype.itemsize
    raw = np.frombuffer(
        np.ascontiguousarray(batch).tobytes(), dtype=np.uint8
    ).reshape(len(batch), rec)
    h = np.full(len(batch), _FNV_OFFSET, dtype=np.uint32)
    for col in range(rec):
        h = (h ^ raw[:, col]) * _FNV_PRIME
    return h


def range_offsets(n_rows: int, n_shards: int) -> list[int]:
    """Shard boundaries for ``range`` placement: K near-equal spans.

    The first ``n_rows % n_shards`` shards get one extra row; with
    ``n_shards > n_rows`` the trailing shards are empty (a legal,
    tested edge case).
    """
    base, extra = divmod(n_rows, n_shards)
    offsets = [0]
    for i in range(n_shards):
        offsets.append(offsets[-1] + base + (1 if i < extra else 0))
    return offsets


@dataclass(frozen=True)
class ShardManifest:
    """The shard directory's metadata (``manifest.json``).

    ``shard_replicas`` (optional, written by :func:`replicate_shards`)
    lists extra byte-identical copies of each shard file — the failover
    placements the elastic coordinator falls back to when a shard's
    primary placement dies mid-build.  An empty tuple means "no
    replicas"; manifests written before replication existed load
    unchanged.
    """

    placement: str
    schema_digest: str
    shard_files: tuple[str, ...]
    shard_rows: tuple[int, ...]
    shard_replicas: tuple[tuple[str, ...], ...] = ()

    @property
    def n_shards(self) -> int:
        return len(self.shard_files)

    @property
    def total_rows(self) -> int:
        return sum(self.shard_rows)

    def replicas_for(self, shard_id: int) -> tuple[str, ...]:
        if shard_id < len(self.shard_replicas):
            return self.shard_replicas[shard_id]
        return ()

    def to_dict(self) -> dict:
        shards = []
        for shard_id, (name, rows) in enumerate(
            zip(self.shard_files, self.shard_rows)
        ):
            entry: dict = {"file": name, "rows": rows}
            replicas = self.replicas_for(shard_id)
            if replicas:
                entry["replicas"] = list(replicas)
            shards.append(entry)
        return {
            "version": MANIFEST_VERSION,
            "placement": self.placement,
            "schema_digest": self.schema_digest,
            "shards": shards,
        }

    @classmethod
    def from_dict(cls, data: dict, where: str) -> "ShardManifest":
        try:
            if data["version"] != MANIFEST_VERSION:
                raise StorageError(
                    f"{where}: unsupported shard manifest version "
                    f"{data['version']!r}"
                )
            placement = data["placement"]
            shards = data["shards"]
            replicas = tuple(
                tuple(entry.get("replicas", ())) for entry in shards
            )
            manifest = cls(
                placement=placement,
                schema_digest=data["schema_digest"],
                shard_files=tuple(entry["file"] for entry in shards),
                shard_rows=tuple(int(entry["rows"]) for entry in shards),
                shard_replicas=replicas if any(replicas) else (),
            )
        except (KeyError, TypeError) as exc:
            raise StorageError(f"{where}: malformed shard manifest: {exc}")
        if placement not in PLACEMENTS:
            raise StorageError(f"{where}: unknown placement {placement!r}")
        if manifest.n_shards == 0:
            raise StorageError(f"{where}: shard manifest lists no shards")
        return manifest

    def save(self, directory: str | os.PathLike) -> str:
        path = os.path.join(os.fspath(directory), MANIFEST_FILE)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, directory: str | os.PathLike) -> "ShardManifest":
        path = os.path.join(os.fspath(directory), MANIFEST_FILE)
        try:
            with open(path, encoding="utf-8") as fh:
                data = json.load(fh)
        except FileNotFoundError:
            raise StorageError(
                f"{directory}: not a shard directory (no {MANIFEST_FILE})"
            )
        except json.JSONDecodeError as exc:
            raise StorageError(f"{path}: corrupt shard manifest: {exc}")
        return cls.from_dict(data, where=os.fspath(directory))


def shard_file_name(shard_id: int) -> str:
    return f"shard-{shard_id:04d}.tbl"


def partition_table(
    table: Table,
    directory: str | os.PathLike,
    n_shards: int,
    placement: str = "range",
    batch_rows: int = DEFAULT_BATCH_ROWS,
    io_stats: IOStats | None = None,
) -> ShardManifest:
    """Partition ``table`` into ``n_shards`` shard files under ``directory``.

    One full scan of the source (charged to the source's own stats);
    shard writes are charged to ``io_stats``.  Returns the written
    manifest; open the result with :meth:`ShardedTable.open`.
    """
    if n_shards < 1:
        raise StorageError("n_shards must be >= 1")
    if placement not in PLACEMENTS:
        raise StorageError(
            f"unknown placement {placement!r} (expected one of {PLACEMENTS})"
        )
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    names = [shard_file_name(i) for i in range(n_shards)]
    shards = [
        DiskTable.create(os.path.join(directory, name), table.schema, io_stats)
        for name in names
    ]
    try:
        if placement == "range":
            offsets = range_offsets(len(table), n_shards)
            shard_id = 0
            row = 0
            for batch in table.scan(batch_rows):
                start = 0
                while start < len(batch):
                    while row >= offsets[shard_id + 1]:
                        shard_id += 1
                    take = min(offsets[shard_id + 1] - row, len(batch) - start)
                    shards[shard_id].append(batch[start : start + take])
                    start += take
                    row += take
        else:
            for batch in table.scan(batch_rows):
                dest = _fnv1a_rows(batch) % np.uint32(n_shards)
                for shard_id in range(n_shards):
                    rows = batch[dest == shard_id]
                    if rows.size:
                        shards[shard_id].append(rows)
        manifest = ShardManifest(
            placement=placement,
            schema_digest=schema_digest(table.schema),
            shard_files=tuple(names),
            shard_rows=tuple(len(s) for s in shards),
        )
        manifest.save(directory)
    finally:
        for shard in shards:
            shard.close()
    return manifest


#: Shard-set file name shapes swept by :func:`reshard`:
#: ``shard-0007.tbl``, ``shard-0007-g3.tbl`` (generation 3),
#: ``shard-0007.r1.tbl`` / ``shard-0007-g3.r1.tbl`` (replica 1).
_SHARD_FILE_RE = re.compile(
    r"^shard-\d{4}(?:-g(?P<gen>\d+))?(?:\.r\d+)?\.tbl$"
)


def _link_or_copy(src: str, dst: str) -> None:
    """Duplicate a shard file as cheaply as the filesystem allows."""
    try:
        os.link(src, dst)
    except OSError:
        shutil.copy2(src, dst)


def _fsync_file(path: str) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def replicate_shards(
    directory: str | os.PathLike, copies: int = 1
) -> ShardManifest:
    """Write ``copies`` byte-identical replicas of every shard file.

    Replicas are named ``<primary stem>.r{j}.tbl`` (hardlinked when the
    filesystem allows, copied otherwise) and recorded in the manifest's
    per-shard ``replicas`` lists.  The elastic build coordinator uses
    them as failover placements: a shard whose primary placement dies
    mid-scan is re-executed from a replica without restarting the build.
    Re-running with a higher ``copies`` adds the missing replicas;
    :func:`reshard` drops all replicas (re-replicate afterwards).
    """
    if copies < 1:
        raise StorageError("copies must be >= 1")
    directory = os.fspath(directory)
    manifest = ShardManifest.load(directory)
    replicas: list[tuple[str, ...]] = []
    for shard_id, primary in enumerate(manifest.shard_files):
        stem = primary[: -len(".tbl")]
        have = list(manifest.replicas_for(shard_id))
        for j in range(1, copies + 1):
            name = f"{stem}.r{j}.tbl"
            if name in have:
                continue
            path = os.path.join(directory, name)
            if os.path.exists(path):
                os.remove(path)
            _link_or_copy(os.path.join(directory, primary), path)
            _fsync_file(path)
            have.append(name)
        replicas.append(tuple(have))
    manifest = ShardManifest(
        placement=manifest.placement,
        schema_digest=manifest.schema_digest,
        shard_files=manifest.shard_files,
        shard_rows=manifest.shard_rows,
        shard_replicas=tuple(replicas),
    )
    manifest.save(directory)
    return manifest


def _next_generation(directory: str) -> int:
    """One past the highest shard-file generation present in ``directory``.

    Scans the directory rather than the manifest so that stray files from
    a reshard that died between writing its new shards and swapping the
    manifest can never collide with the next attempt's names.
    """
    gen = 0
    for name in os.listdir(directory):
        match = _SHARD_FILE_RE.match(name)
        if match is not None:
            gen = max(gen, int(match.group("gen") or 0))
    return gen + 1


def reshard(
    directory: str | os.PathLike,
    n_shards: int,
    batch_rows: int = DEFAULT_BATCH_ROWS,
    io_stats: IOStats | None = None,
) -> ShardManifest:
    """Re-partition a ``range``-placed shard directory to ``n_shards`` in place.

    The global row order is preserved exactly, so a build checkpointed
    against the old layout resumes against the new one byte-identically
    (checkpointed cleanup units are keyed by *global* row interval, not
    shard id — see ``repro.shard.elastic``).  The migration is
    crash-safe: new shard files carry a fresh generation suffix
    (``shard-0001-g2.tbl``), are fully written and fsynced before the
    manifest is atomically swapped, and only then are the old
    generation's files (including its replicas — re-run
    :func:`replicate_shards` afterwards) deleted.  A kill at any instant
    leaves a directory that opens consistently under exactly one of the
    two manifests.

    A new shard whose range coincides with an old shard's reuses the old
    file via hardlink/copy instead of re-scanning it — a pure split or a
    pure merge only moves the rows that actually change shards.
    ``hash`` placement is refused: hash routing fixes K at partition
    time, so changing K requires re-partitioning from the source table.
    """
    if n_shards < 1:
        raise StorageError("n_shards must be >= 1")
    directory = os.fspath(directory)
    manifest = ShardManifest.load(directory)
    if manifest.placement != "range":
        raise StorageError(
            f"{directory}: reshard requires range placement; {manifest.placement!r}"
            f"-placed shard sets fix K at partition time and must be "
            f"re-partitioned from the source table"
        )
    old_offsets = [0]
    for rows in manifest.shard_rows:
        old_offsets.append(old_offsets[-1] + rows)
    new_offsets = range_offsets(manifest.total_rows, n_shards)
    gen = _next_generation(directory)
    new_names = [f"shard-{i:04d}-g{gen}.tbl" for i in range(n_shards)]

    table = ShardedTable.open(directory, io_stats)
    try:
        schema = table.schema
        shards = table.shard_tables
        for i in range(n_shards):
            lo, hi = new_offsets[i], new_offsets[i + 1]
            new_path = os.path.join(directory, new_names[i])
            reuse = next(
                (
                    j
                    for j in range(manifest.n_shards)
                    if old_offsets[j] == lo and old_offsets[j + 1] == hi
                ),
                None,
            )
            if reuse is not None:
                _link_or_copy(
                    os.path.join(directory, manifest.shard_files[reuse]),
                    new_path,
                )
            else:
                out = DiskTable.create(new_path, schema, io_stats)
                try:
                    for j in range(manifest.n_shards):
                        take_lo = max(lo, old_offsets[j])
                        take_hi = min(hi, old_offsets[j + 1])
                        if take_lo >= take_hi:
                            continue
                        for batch in shards[j].scan(
                            batch_rows,
                            start_row=take_lo - old_offsets[j],
                            stop_row=take_hi - old_offsets[j],
                        ):
                            out.append(batch)
                finally:
                    out.close()
            _fsync_file(new_path)
    finally:
        table.close()

    new_manifest = ShardManifest(
        placement="range",
        schema_digest=manifest.schema_digest,
        shard_files=tuple(new_names),
        shard_rows=tuple(
            new_offsets[i + 1] - new_offsets[i] for i in range(n_shards)
        ),
    )
    new_manifest.save(directory)
    keep = set(new_names)
    for name in os.listdir(directory):
        if name not in keep and _SHARD_FILE_RE.match(name):
            os.remove(os.path.join(directory, name))
    return new_manifest


class ShardedTable(Table):
    """K :class:`DiskTable` shards scanned as one logical table.

    Read-only: the shard set is the durable training database; mutating
    it would invalidate the manifest's row counts.  Open with
    :meth:`open`; each shard carries a private :class:`IOStats`
    (:attr:`shard_io_stats`) whose deltas are merged into the shared
    experiment instance as scans progress.
    """

    scan_supports_start_row = True

    def __init__(
        self,
        directory: str,
        manifest: ShardManifest,
        shards: list[DiskTable],
        shard_ios: list[IOStats],
        io_stats: IOStats | None,
    ):
        super().__init__(shards[0].schema, io_stats)
        self._directory = directory
        self._manifest = manifest
        self._shards = shards
        self._shard_ios = shard_ios
        self._closed = False

    @classmethod
    def open(
        cls,
        directory: str | os.PathLike,
        io_stats: IOStats | None = None,
        simulated_mbps: float | None = None,
    ) -> "ShardedTable":
        """Open a shard directory, validating every shard against the manifest.

        Raises :class:`StorageError` (a :class:`~repro.exceptions.ReproError`)
        when a shard's schema digest does not match the manifest or a
        shard's row count drifted from the recorded one.
        """
        directory = os.fspath(directory)
        manifest = ShardManifest.load(directory)
        shards: list[DiskTable] = []
        shard_ios: list[IOStats] = []
        try:
            for shard_id, (name, rows) in enumerate(
                zip(manifest.shard_files, manifest.shard_rows)
            ):
                shard_io = IOStats()
                try:
                    shard = DiskTable.open(
                        os.path.join(directory, name),
                        shard_io,
                        simulated_mbps=simulated_mbps,
                    )
                except OSError as exc:
                    raise StorageError(
                        f"{directory}: shard {shard_id} ({name}) cannot be "
                        f"opened: {exc}"
                    ) from exc
                shards.append(shard)
                shard_ios.append(shard_io)
                digest = schema_digest(shard.schema)
                if digest != manifest.schema_digest:
                    raise StorageError(
                        f"{directory}: shard {shard_id} ({name}) schema digest "
                        f"{digest[:12]}… does not match manifest "
                        f"{manifest.schema_digest[:12]}… — shard set and "
                        f"manifest disagree on the schema"
                    )
                if len(shard) != rows:
                    raise StorageError(
                        f"{directory}: shard {shard_id} ({name}) holds "
                        f"{len(shard)} rows but the manifest records {rows}"
                    )
        except BaseException:
            for shard in shards:
                shard.close()
            raise
        return cls(directory, manifest, shards, shard_ios, io_stats)

    # -- introspection -------------------------------------------------------

    @property
    def directory(self) -> str:
        return self._directory

    @property
    def manifest(self) -> ShardManifest:
        return self._manifest

    @property
    def n_shards(self) -> int:
        return self._manifest.n_shards

    @property
    def shard_paths(self) -> list[str]:
        return [
            os.path.join(self._directory, name)
            for name in self._manifest.shard_files
        ]

    @property
    def replica_paths(self) -> list[list[str]]:
        """Per-shard replica file paths (``[]`` when never replicated).

        Replicas are *not* validated at open time — they only matter on
        the failover path, where the elastic coordinator checks them
        lazily (a corrupt replica simply fails that placement attempt).
        """
        return [
            [
                os.path.join(self._directory, name)
                for name in self._manifest.replicas_for(shard_id)
            ]
            for shard_id in range(self._manifest.n_shards)
        ]

    @property
    def shard_io_stats(self) -> list[IOStats]:
        """Each shard's private counters (per-shard scan-count invariants)."""
        return list(self._shard_ios)

    @property
    def shard_tables(self) -> list[DiskTable]:
        return list(self._shards)

    # -- Table interface -----------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise TableClosedError(f"ShardedTable {self._directory} is closed")

    def __len__(self) -> int:
        return self._manifest.total_rows

    def append(self, batch: np.ndarray) -> None:
        raise StorageError(
            f"ShardedTable {self._directory} is read-only; re-partition the "
            f"source table to change the shard set"
        )

    def _charge(self, shard_io: IOStats, before: IOStats) -> None:
        """Merge one shard's scan delta into the experiment counters.

        ``full_scans`` stays per-shard: the experiment instance counts
        logical sharded scans, the private instances count physical ones.
        """
        if self._io_stats is None:
            return
        delta = shard_io.delta_since(before)
        delta.full_scans = 0
        self._io_stats.merge(delta)

    def _shard_stream(
        self, batch_rows: int, start_row: int, columns: list[str] | None
    ) -> Iterator[np.ndarray]:
        """Yield shard chunks aligned to the global ``batch_rows`` grid.

        A shard boundary rarely falls on a multiple of ``batch_rows``, so
        each shard scan is split in two: a *head* sub-scan of exactly the
        rows needed to complete the batch left unfinished by the previous
        shard, then a tail sub-scan whose chunks land on the global grid.
        Downstream, :func:`_rebatch` passes every grid-aligned chunk
        through as a zero-copy view and only concatenates the one
        straddling batch per shard edge (at most K-1 per scan) — without
        alignment every batch after the first shard edge is a two-piece
        copy, which is what collapsed multi-shard scan throughput.
        """
        offset = 0
        for shard, shard_io in zip(self._shards, self._shard_ios):
            n = len(shard)
            offset_next = offset + n
            if n == 0 or start_row >= offset_next:
                offset = offset_next
                continue
            local_start = max(start_row - offset, 0)
            # Rows needed to complete the current (partial) global batch.
            head = min(
                -(offset + local_start - start_row) % batch_rows,
                n - local_start,
            )
            before = shard_io.snapshot()
            if columns is None:
                if head:
                    yield from shard.scan(
                        batch_rows,
                        start_row=local_start,
                        stop_row=local_start + head,
                    )
                if local_start + head < n:
                    yield from shard.scan(
                        batch_rows, start_row=local_start + head
                    )
            else:
                if head:
                    yield from shard.scan_columns(
                        columns,
                        batch_rows,
                        start_row=local_start,
                        stop_row=local_start + head,
                    )
                if local_start + head < n:
                    yield from shard.scan_columns(
                        columns, batch_rows, start_row=local_start + head
                    )
            # When the scan is split, neither sub-scan covers the shard
            # in one call, so neither records the physical full scan the
            # per-shard two-scan invariant asserts on; record it here
            # when the whole shard was in fact read.
            if local_start == 0 and 0 < head < n:
                shard_io.record_full_scan()
            self._charge(shard_io, before)
            offset = offset_next

    def scan(
        self, batch_rows: int = DEFAULT_BATCH_ROWS, start_row: int = 0
    ) -> Iterator[np.ndarray]:
        """Scan shards in manifest order as one stream of exact batches."""
        self._check_open()
        if batch_rows < 1:
            raise ValueError("batch_rows must be >= 1")
        if start_row < 0:
            raise ValueError("start_row must be >= 0")
        yield from _rebatch(
            self._shard_stream(batch_rows, start_row, None), batch_rows
        )
        if self._io_stats is not None and start_row == 0:
            self._io_stats.record_full_scan()

    def scan_columns(
        self,
        columns: list[str],
        batch_rows: int = DEFAULT_BATCH_ROWS,
        start_row: int = 0,
    ) -> Iterator[np.ndarray]:
        """Projection scan delegated shard-by-shard (projected-width billing)."""
        self._check_open()
        if batch_rows < 1:
            raise ValueError("batch_rows must be >= 1")
        if start_row < 0:
            raise ValueError("start_row must be >= 0")
        fields = self._projection_fields(columns)
        yield from _rebatch(
            self._shard_stream(batch_rows, start_row, fields), batch_rows
        )
        if self._io_stats is not None and start_row == 0:
            self._io_stats.record_full_scan()

    def close(self) -> None:
        self._closed = True
        for shard in self._shards:
            shard.close()
