"""Schemas for training databases.

A training database is a relation over *predictor attributes* plus one
distinguished *class label* attribute.  Predictor attributes are either
numerical (float64) or categorical (small integer category codes with a
fixed domain size).  The class label is always a category code in
``range(n_classes)``.

The schema doubles as the binary record layout: it deterministically maps
to a numpy structured dtype used by the paged on-disk tables, so a schema
plus a file is a self-describing training database.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Iterator

import numpy as np

from ..exceptions import SchemaError

#: Reserved column name for the class label in structured arrays.
CLASS_COLUMN = "class_label"


class AttributeKind(str, Enum):
    """Kind of a predictor attribute."""

    NUMERICAL = "numerical"
    CATEGORICAL = "categorical"


@dataclass(frozen=True)
class Attribute:
    """One predictor attribute.

    Attributes:
        name: column name; must be a valid identifier and not the reserved
            class-label column name.
        kind: numerical or categorical.
        domain_size: for categorical attributes, the number of categories;
            values are codes in ``range(domain_size)``.  ``None`` for
            numerical attributes.
    """

    name: str
    kind: AttributeKind
    domain_size: int | None = None

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise SchemaError(f"attribute name {self.name!r} is not an identifier")
        if self.name == CLASS_COLUMN:
            raise SchemaError(f"{CLASS_COLUMN!r} is reserved for the class label")
        if self.kind is AttributeKind.CATEGORICAL:
            if self.domain_size is None or self.domain_size < 2:
                raise SchemaError(
                    f"categorical attribute {self.name!r} needs domain_size >= 2"
                )
        elif self.domain_size is not None:
            raise SchemaError(
                f"numerical attribute {self.name!r} must not set domain_size"
            )

    @property
    def is_numerical(self) -> bool:
        return self.kind is AttributeKind.NUMERICAL

    @property
    def is_categorical(self) -> bool:
        return self.kind is AttributeKind.CATEGORICAL

    @staticmethod
    def numerical(name: str) -> "Attribute":
        """Shorthand constructor for a numerical attribute."""
        return Attribute(name, AttributeKind.NUMERICAL)

    @staticmethod
    def categorical(name: str, domain_size: int) -> "Attribute":
        """Shorthand constructor for a categorical attribute."""
        return Attribute(name, AttributeKind.CATEGORICAL, domain_size)


class Schema:
    """Ordered predictor attributes plus the class label domain.

    The attribute order is significant: it is the deterministic tie-break
    order used by every split selection method, and it is the physical
    column order of the binary record layout.
    """

    def __init__(self, attributes: Iterable[Attribute], n_classes: int):
        self._attributes = tuple(attributes)
        if not self._attributes:
            raise SchemaError("schema needs at least one predictor attribute")
        names = [a.name for a in self._attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in {names}")
        if n_classes < 2:
            raise SchemaError("n_classes must be >= 2")
        self._n_classes = int(n_classes)
        self._index = {a.name: i for i, a in enumerate(self._attributes)}
        self._dtype: np.dtype | None = None

    # -- basic accessors ---------------------------------------------------

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        return self._attributes

    @property
    def n_classes(self) -> int:
        return self._n_classes

    @property
    def n_attributes(self) -> int:
        return len(self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __getitem__(self, key: int | str) -> Attribute:
        if isinstance(key, str):
            return self._attributes[self.index_of(key)]
        return self._attributes[key]

    def index_of(self, name: str) -> int:
        """Return the position of the attribute called ``name``."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"no attribute named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._index

    @property
    def numerical_attributes(self) -> tuple[Attribute, ...]:
        return tuple(a for a in self._attributes if a.is_numerical)

    @property
    def categorical_attributes(self) -> tuple[Attribute, ...]:
        return tuple(a for a in self._attributes if a.is_categorical)

    # -- equality / hashing ------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return (
            self._attributes == other._attributes
            and self._n_classes == other._n_classes
        )

    def __hash__(self) -> int:
        return hash((self._attributes, self._n_classes))

    def __repr__(self) -> str:
        cols = ", ".join(
            f"{a.name}:{'num' if a.is_numerical else f'cat({a.domain_size})'}"
            for a in self._attributes
        )
        return f"Schema([{cols}], n_classes={self._n_classes})"

    # -- binary layout -----------------------------------------------------

    def dtype(self) -> np.dtype:
        """The numpy structured dtype of one record.

        Numerical attributes are float64, categorical attributes int32,
        and the class label int32.  The layout is packed (align=False) so
        record size is stable across platforms.  Schemas are immutable,
        so the dtype is built once and cached (scan loops call this per
        sub-scan).
        """
        if self._dtype is None:
            fields: list[tuple[str, str]] = []
            for attr in self._attributes:
                fields.append(
                    (attr.name, "<f8" if attr.is_numerical else "<i4")
                )
            fields.append((CLASS_COLUMN, "<i4"))
            self._dtype = np.dtype(fields)
        return self._dtype

    @property
    def record_size(self) -> int:
        """Bytes per record in the binary layout."""
        return self.dtype().itemsize

    def empty(self, n: int = 0) -> np.ndarray:
        """Allocate an uninitialized structured array of ``n`` records."""
        return np.empty(n, dtype=self.dtype())

    def validate_batch(self, batch: np.ndarray) -> None:
        """Raise :class:`SchemaError` unless ``batch`` matches this schema.

        Checks the dtype, categorical code ranges, and class label range.
        Intended for API boundaries (table append, generator output); inner
        loops skip it.
        """
        if batch.dtype != self.dtype():
            raise SchemaError(
                f"batch dtype {batch.dtype} does not match schema dtype {self.dtype()}"
            )
        if batch.size == 0:
            return
        labels = batch[CLASS_COLUMN]
        if labels.min() < 0 or labels.max() >= self._n_classes:
            raise SchemaError(
                f"class labels outside range(0, {self._n_classes}): "
                f"[{labels.min()}, {labels.max()}]"
            )
        for attr in self._attributes:
            if attr.is_categorical:
                codes = batch[attr.name]
                if codes.min() < 0 or codes.max() >= attr.domain_size:
                    raise SchemaError(
                        f"attribute {attr.name!r} has codes outside "
                        f"range(0, {attr.domain_size})"
                    )

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict form, suitable for JSON headers."""
        return {
            "attributes": [
                {
                    "name": a.name,
                    "kind": a.kind.value,
                    "domain_size": a.domain_size,
                }
                for a in self._attributes
            ],
            "n_classes": self._n_classes,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Schema":
        """Inverse of :meth:`to_dict`."""
        try:
            attrs = [
                Attribute(
                    a["name"], AttributeKind(a["kind"]), a.get("domain_size")
                )
                for a in data["attributes"]
            ]
            return cls(attrs, data["n_classes"])
        except (KeyError, TypeError, ValueError) as exc:
            raise SchemaError(f"malformed schema dict: {exc}") from exc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Schema":
        try:
            return cls.from_dict(json.loads(text))
        except json.JSONDecodeError as exc:
            raise SchemaError(f"malformed schema JSON: {exc}") from exc
