"""Shared infrastructure for the figure benchmarks.

Every benchmark records :class:`~repro.bench.RunResult` rows into a
session-wide collector; at the end of the session each experiment's
series is printed in the paper-figure format (x-axis vs one column per
algorithm, for both wall-clock seconds and database scans) and appended
to ``bench_results.jsonl``.
"""

from __future__ import annotations

import shutil
import tempfile
from collections import OrderedDict

import pytest

from repro.bench import (
    WorkloadSpec,
    append_results_json,
    format_series,
    materialize,
    results_path,
    speedup_summary,
)
from repro.storage import IOStats


class SeriesCollector:
    """Accumulates per-experiment result rows across parametrized tests."""

    def __init__(self) -> None:
        self.experiments: "OrderedDict[str, dict]" = OrderedDict()

    def add(self, experiment: str, x_label: str, x_value, result) -> None:
        entry = self.experiments.setdefault(
            experiment, {"x_label": x_label, "x_values": [], "results": []}
        )
        if x_value not in entry["x_values"]:
            entry["x_values"].append(x_value)
        entry["results"].append(result)

    def render(self) -> str:
        blocks = []
        for name, entry in self.experiments.items():
            blocks.append(
                format_series(
                    name,
                    entry["x_label"],
                    entry["x_values"],
                    entry["results"],
                    metric="wall_seconds",
                )
            )
            blocks.append(
                format_series(
                    name + " (scans)",
                    entry["x_label"],
                    entry["x_values"],
                    entry["results"],
                    metric="scans",
                )
            )
            summary = speedup_summary(entry["results"])
            if summary:
                blocks.append(summary)
        return "\n\n".join(blocks)


_COLLECTOR = SeriesCollector()


@pytest.fixture(scope="session")
def collector() -> SeriesCollector:
    return _COLLECTOR


class WorkloadCache:
    """Materializes each workload table once per session."""

    def __init__(self) -> None:
        self.directory = tempfile.mkdtemp(prefix="repro-bench-session-")
        self._tables: dict[WorkloadSpec, tuple] = {}

    def table(self, spec: WorkloadSpec):
        if spec not in self._tables:
            io = IOStats()
            table = materialize(spec, self.directory, io)
            self._tables[spec] = (table, io)
        table, io = self._tables[spec]
        io.reset()
        return table

    def cleanup(self) -> None:
        shutil.rmtree(self.directory, ignore_errors=True)


@pytest.fixture(scope="session")
def workloads():
    cache = WorkloadCache()
    yield cache
    cache.cleanup()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _COLLECTOR.experiments:
        return
    terminalreporter.write_sep("=", "paper figure series")
    terminalreporter.write_line(_COLLECTOR.render())
    try:
        for name, entry in _COLLECTOR.experiments.items():
            append_results_json(results_path(), name, entry["results"])
        terminalreporter.write_line(f"\n(series appended to {results_path()})")
    except OSError:
        pass
