"""Figures 4–6: overall construction time vs training database size.

Paper setup: Functions 1, 6 and 7 at 10 % noise, 2–10 M tuples, BOAT vs
RF-Hybrid (3 M-entry AVC buffer) vs RF-Vertical (1.8 M), in-memory switch
at 1.5 M tuples.  Here sizes are scaled down ~50x (multiply back up with
``REPRO_BENCH_SCALE``); buffer and switch sizes keep the paper's
proportions via :func:`repro.bench.default_configs`.

Expected shape (asserted): BOAT completes in exactly two database scans
at every size while the level-wise algorithms pay one or more scans per
level, and all three algorithms emit the identical tree.
"""

from __future__ import annotations

import pytest

from repro.bench import (
    WorkloadSpec,
    default_configs,
    run_boat,
    run_rf_hybrid,
    run_rf_vertical,
    scaled,
)
from repro.splits import ImpuritySplitSelection

SIZES = [scaled(n) for n in (20_000, 40_000, 80_000)]
ALGORITHMS = {
    "BOAT": run_boat,
    "RF-Hybrid": run_rf_hybrid,
    "RF-Vertical": run_rf_vertical,
}
FIGS = {4: 1, 5: 6, 6: 7}


def _run(fig, function_id, algorithm, n, workloads, collector, benchmark):
    spec = WorkloadSpec(function_id=function_id, n_tuples=n, noise=0.1, seed=fig)
    table = workloads.table(spec)
    split, boat, hybrid, vertical = default_configs(n)
    method = ImpuritySplitSelection("gini")
    config = {"BOAT": boat, "RF-Hybrid": hybrid, "RF-Vertical": vertical}[algorithm]
    runner = ALGORITHMS[algorithm]
    holder = {}

    def once():
        holder["result"] = runner(spec, table, method, split, config)

    benchmark.pedantic(once, rounds=1, iterations=1)
    result = holder["result"]
    collector.add(
        f"Figure {fig}: overall time, F{function_id} (noise 10%)",
        "tuples",
        n,
        result,
    )
    if algorithm == "BOAT":
        assert result.scans == 2, "BOAT must finish in two scans"
    else:
        assert result.scans >= 3, "level-wise algorithms scan per level"
    return result


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("algorithm", list(ALGORITHMS))
def test_fig4_f1(benchmark, algorithm, n, workloads, collector):
    _run(4, 1, algorithm, n, workloads, collector, benchmark)


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("algorithm", list(ALGORITHMS))
def test_fig5_f6(benchmark, algorithm, n, workloads, collector):
    _run(5, 6, algorithm, n, workloads, collector, benchmark)


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("algorithm", list(ALGORITHMS))
def test_fig6_f7(benchmark, algorithm, n, workloads, collector):
    _run(6, 7, algorithm, n, workloads, collector, benchmark)


@pytest.mark.parametrize("fig,function_id", sorted(FIGS.items()))
def test_identical_trees_across_algorithms(
    benchmark, fig, function_id, workloads
):
    """All three algorithms construct exactly the same tree (paper claim)."""
    from repro.config import SplitConfig
    from repro.core import boat_build
    from repro.rainforest import build_rf_hybrid, build_rf_vertical
    from repro.tree import trees_equal

    n = SIZES[0]
    spec = WorkloadSpec(function_id=function_id, n_tuples=n, noise=0.1, seed=fig)
    table = workloads.table(spec)
    split, boat_cfg, hybrid_cfg, vertical_cfg = default_configs(n)
    method = ImpuritySplitSelection("gini")

    def once():
        boat = boat_build(table, method, split, boat_cfg).tree
        hybrid = build_rf_hybrid(table, method, split, hybrid_cfg).tree
        vertical = build_rf_vertical(table, method, split, vertical_cfg).tree
        assert trees_equal(boat, hybrid)
        assert trees_equal(hybrid, vertical)

    benchmark.pedantic(once, rounds=1, iterations=1)
