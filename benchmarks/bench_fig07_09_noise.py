"""Figures 7–9: construction time vs label-noise level.

Paper setup: 5 M tuples (scaled here), noise swept 2 %–10 %, Functions 1,
6 and 7.  Expected shape (asserted): BOAT's running time is essentially
flat in the noise level — noise only perturbs deep splits, where the
in-memory switch has already taken over — and BOAT keeps its two-scan
guarantee at every noise level.
"""

from __future__ import annotations

import pytest

from repro.bench import (
    WorkloadSpec,
    default_configs,
    run_boat,
    run_rf_hybrid,
    run_rf_vertical,
    scaled,
)
from repro.splits import ImpuritySplitSelection

N_TUPLES = scaled(50_000)
NOISE_LEVELS = [0.02, 0.06, 0.10]
ALGORITHMS = {
    "BOAT": run_boat,
    "RF-Hybrid": run_rf_hybrid,
    "RF-Vertical": run_rf_vertical,
}
FIGS = {7: 1, 8: 6, 9: 7}


def _run(fig, function_id, algorithm, noise, workloads, collector, benchmark):
    spec = WorkloadSpec(
        function_id=function_id, n_tuples=N_TUPLES, noise=noise, seed=fig
    )
    table = workloads.table(spec)
    split, boat, hybrid, vertical = default_configs(N_TUPLES)
    method = ImpuritySplitSelection("gini")
    config = {"BOAT": boat, "RF-Hybrid": hybrid, "RF-Vertical": vertical}[algorithm]
    holder = {}

    def once():
        holder["result"] = ALGORITHMS[algorithm](spec, table, method, split, config)

    benchmark.pedantic(once, rounds=1, iterations=1)
    result = holder["result"]
    collector.add(
        f"Figure {fig}: time vs noise, F{function_id} (n={N_TUPLES})",
        "noise %",
        int(noise * 100),
        result,
    )
    if algorithm == "BOAT":
        assert result.scans == 2


@pytest.mark.parametrize("noise", NOISE_LEVELS)
@pytest.mark.parametrize("algorithm", list(ALGORITHMS))
def test_fig7_f1(benchmark, algorithm, noise, workloads, collector):
    _run(7, 1, algorithm, noise, workloads, collector, benchmark)


@pytest.mark.parametrize("noise", NOISE_LEVELS)
@pytest.mark.parametrize("algorithm", list(ALGORITHMS))
def test_fig8_f6(benchmark, algorithm, noise, workloads, collector):
    _run(8, 6, algorithm, noise, workloads, collector, benchmark)


@pytest.mark.parametrize("noise", NOISE_LEVELS)
@pytest.mark.parametrize("algorithm", list(ALGORITHMS))
def test_fig9_f7(benchmark, algorithm, noise, workloads, collector):
    _run(9, 7, algorithm, noise, workloads, collector, benchmark)


def test_boat_flat_in_noise(benchmark, workloads):
    """The paper's observation: BOAT's cost does not depend on noise."""
    from repro.bench import run_boat as runner

    method = ImpuritySplitSelection("gini")
    times = []

    def once():
        for noise in (0.02, 0.10):
            spec = WorkloadSpec(function_id=1, n_tuples=N_TUPLES, noise=noise, seed=7)
            table = workloads.table(spec)
            split, boat, _, _ = default_configs(N_TUPLES)
            times.append(runner(spec, table, method, split, boat).wall_seconds)

    benchmark.pedantic(once, rounds=1, iterations=1)
    low, high = times
    assert high < 2.5 * low, "BOAT time should be roughly flat in noise"
