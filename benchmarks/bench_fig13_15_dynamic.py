"""Figures 13–15: decision tree maintenance in a dynamic environment.

* **Figure 13** — chunks arrive from the *same* distribution (Function 1,
  10 % noise).  Series: cumulative time to incorporate each chunk with
  the incremental BOAT update vs. rebuilding from scratch (the paper's
  conservative comparison assumes the original dataset has size zero, so
  the rebuild baseline constructs a tree over the accumulated chunks
  only).  Expected shape (asserted): the update is significantly cheaper
  and its per-chunk cost does not grow like the rebuild's.
* **Figure 14** — the distribution changes (modified Function 1: the old
  old-age boundary moves from 60 to 70).  Parts of the tree must be
  rebuilt, yet the incremental algorithm still wins by roughly the
  paper's factor of two.
* **Figure 15** — arrival chunk size 1x vs 2x: the cumulative-time
  curves, plotted against cumulative tuples, are nearly identical.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bench import RunResult, scaled, simulated_io_mbps
from repro.config import BoatConfig, SplitConfig
from repro.core import IncrementalBoat, boat_build
from repro.datagen import AgrawalConfig, AgrawalGenerator, ChunkStream, drifted_function_1
from repro.splits import ImpuritySplitSelection
from repro.storage import DiskTable, IOStats
from repro.tree import build_reference_tree, tree_diff

CHUNK = scaled(20_000)
N_CHUNKS = 5
SPLIT = SplitConfig(min_samples_split=400, min_samples_leaf=100, max_depth=10)


def boat_config() -> BoatConfig:
    return BoatConfig(
        sample_size=max(CHUNK // 4, 2000),
        bootstrap_repetitions=12,
        bootstrap_subsample=max(CHUNK // 8, 1000),
        seed=13,
    )


def _rebuild_time(chunks, schema, method, tmp_path, tag) -> float:
    """Time a from-scratch BOAT build over the accumulated chunks."""
    io = IOStats()
    table = DiskTable.create(tmp_path / f"rebuild_{tag}.tbl", schema, io)
    for chunk in chunks:
        table.append(chunk)
    table.set_simulated_throughput(simulated_io_mbps())
    start = time.perf_counter()
    boat_build(table, method, SPLIT, boat_config())
    elapsed = time.perf_counter() - start
    table.delete_file()
    return elapsed


def _result(algorithm, tag, chunk_index, seconds) -> RunResult:
    return RunResult(
        algorithm=algorithm,
        workload=f"{tag} chunk={chunk_index}",
        n_tuples=(chunk_index + 1) * CHUNK,
        wall_seconds=seconds,
        scans=0,
        tuples_read=0,
        tree_nodes=0,
        tree_leaves=0,
    )


def _run_dynamic(stream, tag, tmp_path, collector, check_against=None):
    """Shared Figure 13/14 engine: incremental vs cumulative rebuilds."""
    method = ImpuritySplitSelection("gini")
    schema = AgrawalGenerator(AgrawalConfig(function_id=1)).schema
    chunks = list(stream.chunks(N_CHUNKS))
    inc = IncrementalBoat.from_chunk(chunks[0], schema, method, SPLIT, boat_config())
    cumulative_update = inc.reports[-1].wall_seconds
    cumulative_rebuild = _rebuild_time(chunks[:1], schema, method, tmp_path, f"{tag}0")
    collector.add(tag, "chunks", 1, _result("BOAT-update (cumulative)", tag, 0, cumulative_update))
    collector.add(tag, "chunks", 1, _result("Rebuild (cumulative)", tag, 0, cumulative_rebuild))
    update_times = [cumulative_update]
    for i in range(1, N_CHUNKS):
        report = inc.insert(chunks[i])
        cumulative_update += report.wall_seconds
        update_times.append(report.wall_seconds)
        cumulative_rebuild += _rebuild_time(
            chunks[: i + 1], schema, method, tmp_path, f"{tag}{i}"
        )
        collector.add(
            tag, "chunks", i + 1,
            _result("BOAT-update (cumulative)", tag, i, cumulative_update),
        )
        collector.add(
            tag, "chunks", i + 1,
            _result("Rebuild (cumulative)", tag, i, cumulative_rebuild),
        )
    if check_against is not None:
        reference = build_reference_tree(
            np.concatenate(chunks), schema, method, SPLIT
        )
        assert tree_diff(inc.tree, reference) is None
    inc.close()
    return cumulative_update, cumulative_rebuild, update_times, inc


def test_fig13_same_distribution(benchmark, collector, tmp_path):
    stream = ChunkStream(AgrawalConfig(function_id=1, noise=0.1), CHUNK, seed=130)
    holder = {}

    def once():
        holder["out"] = _run_dynamic(
            stream,
            "Figure 13: dynamic updates, same distribution",
            tmp_path,
            collector,
            check_against=True,
        )

    benchmark.pedantic(once, rounds=1, iterations=1)
    cumulative_update, cumulative_rebuild, update_times, _ = holder["out"]
    assert cumulative_update < cumulative_rebuild, "updates must beat rebuilds"
    # Per-chunk update cost must not grow like the rebuild cost does:
    # the last update should stay within a small factor of the second.
    assert update_times[-1] < 4 * max(update_times[1], 1e-3)


def test_fig14_distribution_change(benchmark, collector, tmp_path):
    from repro.datagen import DriftSpec

    drifted = AgrawalConfig(
        function_id=1, noise=0.1, label_fn=drifted_function_1(70.0)
    )
    stream = ChunkStream(
        AgrawalConfig(function_id=1, noise=0.1),
        CHUNK,
        seed=140,
        drift=DriftSpec(after_chunk=2, drifted_config=drifted),
    )
    holder = {}

    def once():
        holder["out"] = _run_dynamic(
            stream,
            "Figure 14: dynamic updates under distribution change",
            tmp_path,
            collector,
            check_against=True,
        )

    benchmark.pedantic(once, rounds=1, iterations=1)
    cumulative_update, cumulative_rebuild, _, inc = holder["out"]
    # The paper: incremental still wins by ~2x even though subtrees get
    # rebuilt; we assert it simply wins.
    assert cumulative_update < cumulative_rebuild
    print(
        f"\nFigure 14: incremental {cumulative_update:.2f}s vs rebuild "
        f"{cumulative_rebuild:.2f}s "
        f"({cumulative_rebuild / cumulative_update:.2f}x)"
    )
    drift_reports = [r for r in inc.reports if r.drift]
    print(f"drift reports on {len(drift_reports)} update(s):")
    for report in drift_reports[:3]:
        for line in report.drift[:2]:
            print("   ", line)


def test_fig15_chunk_size_invariance(benchmark, collector):
    """Cumulative update time vs cumulative tuples for 1x vs 2x chunks."""
    method = ImpuritySplitSelection("gini")
    schema = AgrawalGenerator(AgrawalConfig(function_id=1)).schema
    total = CHUNK * 4
    holder = {}

    def once():
        curves = {}
        for label, size in (("chunk=1x", CHUNK // 2), ("chunk=2x", CHUNK)):
            stream = ChunkStream(
                AgrawalConfig(function_id=1, noise=0.1), size, seed=150
            )
            chunks = list(stream.chunks(total // size))
            inc = IncrementalBoat.from_chunk(
                chunks[0], schema, method, SPLIT, boat_config()
            )
            cumulative = inc.reports[-1].wall_seconds
            points = [(size, cumulative)]
            for chunk in chunks[1:]:
                cumulative += inc.insert(chunk).wall_seconds
                points.append((points[-1][0] + size, cumulative))
            curves[label] = points
            inc.close()
        holder["curves"] = curves

    benchmark.pedantic(once, rounds=1, iterations=1)
    curves = holder["curves"]
    for label, points in curves.items():
        for tuples, seconds in points:
            if tuples % CHUNK:
                continue  # report on the common cumulative-tuples grid
            collector.add(
                "Figure 15: cumulative update time vs arrival volume",
                "tuples",
                tuples,
                _result(label, "fig15", tuples // CHUNK, seconds),
            )
    end_small = curves["chunk=1x"][-1][1]
    end_large = curves["chunk=2x"][-1][1]
    ratio = max(end_small, end_large) / max(min(end_small, end_large), 1e-6)
    print(f"\nFigure 15: total {end_small:.2f}s (1x) vs {end_large:.2f}s (2x), ratio {ratio:.2f}")
    assert ratio < 2.0, "curves should be nearly identical (paper: overlap)"
