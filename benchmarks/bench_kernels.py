"""Cleanup-scan kernel backends: vectorized numpy vs per-row python.

Builds the same BOAT tree twice on one workload — once per
``BoatConfig.kernel_backend`` — and records the build-phase (cleanup
scan) wall clock for both.  The headline assertions:

* the two serialized trees are **byte-identical** (the numpy kernels are
  an exact lift of the per-row arithmetic, see ``docs/KERNELS.md``);
* the vectorized cleanup scan is at least ``MIN_SPEEDUP``x faster at the
  benchmark's full size (1 M tuples at scale 1).

The I/O throttle is disabled here: kernel benchmarks measure pure CPU,
not the simulated 1999 disk.
"""

from __future__ import annotations

import time

import pytest

from repro.bench import RunResult, WorkloadSpec, scaled
from repro.config import BoatConfig, SplitConfig
from repro.core import boat_build
from repro.splits import ImpuritySplitSelection
from repro.storage import DiskTable, IOStats
from repro.tree import tree_to_json

N_TUPLES = scaled(1_000_000)
SPEC = WorkloadSpec(function_id=1, n_tuples=N_TUPLES, noise=0.1, seed=9)
#: Required vectorization win for the cleanup scan at full size; scaled
#: runs below 200k tuples skip the assertion (fixed costs dominate).
MIN_SPEEDUP = 3.0
BACKENDS = ("python", "numpy")

SPLIT_CONFIG = SplitConfig(
    min_samples_split=max(N_TUPLES // 500, 20),
    min_samples_leaf=max(N_TUPLES // 2000, 5),
    max_depth=5,
)


def _boat_config(backend: str) -> BoatConfig:
    sample = max(N_TUPLES // 10, 2000)
    return BoatConfig(
        sample_size=sample,
        bootstrap_repetitions=10,
        bootstrap_subsample=max(sample // 4, 1000),
        seed=17,
        kernel_backend=backend,
    )


@pytest.fixture(scope="module")
def kernel_table(workloads):
    table = workloads.table(SPEC)
    table.set_simulated_throughput(None)
    return table


def test_kernel_backend_build_speedup(benchmark, kernel_table, collector):
    """python-vs-numpy cleanup scan on the same 1M-tuple build."""
    runs = {}

    def once():
        for backend in BACKENDS:
            io = IOStats()
            table = DiskTable.open(kernel_table.path, io)
            table.set_simulated_throughput(None)
            start = time.perf_counter()
            result = boat_build(
                table,
                ImpuritySplitSelection("gini", kernels=backend),
                SPLIT_CONFIG,
                _boat_config(backend),
            )
            seconds = time.perf_counter() - start
            table.close()
            runs[backend] = {
                "tree": tree_to_json(result.tree),
                "cleanup_s": result.report.wall_seconds["cleanup_scan"],
                "total_s": seconds,
                "io": io,
                "nodes": result.tree.n_nodes,
                "leaves": result.tree.n_leaves,
            }

    benchmark.pedantic(once, rounds=1, iterations=1)

    assert runs["numpy"]["tree"] == runs["python"]["tree"], (
        "kernel backends produced different trees"
    )
    for backend in BACKENDS:
        run = runs[backend]
        assert run["io"].full_scans == 2, backend
        collector.add(
            "Cleanup kernels: python vs numpy backend, F1 (noise 10%)",
            "backend",
            backend,
            RunResult(
                algorithm=f"BOAT[{backend}]",
                workload=SPEC.describe(),
                n_tuples=N_TUPLES,
                wall_seconds=run["total_s"],
                scans=run["io"].full_scans,
                tuples_read=run["io"].tuples_read,
                tree_nodes=run["nodes"],
                tree_leaves=run["leaves"],
                extra={
                    "cleanup_seconds": run["cleanup_s"],
                    "cleanup_speedup_vs_python": (
                        runs["python"]["cleanup_s"] / max(run["cleanup_s"], 1e-9)
                    ),
                },
            ),
        )
    speedup = runs["python"]["cleanup_s"] / max(runs["numpy"]["cleanup_s"], 1e-9)
    if N_TUPLES >= 200_000:
        assert speedup >= MIN_SPEEDUP, (
            f"cleanup-scan vectorization speedup {speedup:.1f}x fell below "
            f"{MIN_SPEEDUP}x at {N_TUPLES} tuples"
        )
