"""Ablations of BOAT's design knobs (beyond the paper's figures).

DESIGN.md calls out several choices whose effect the paper leaves
qualitative; these benches quantify them:

* **sample size** — a larger D' stabilizes the bootstrap (fewer frontier
  nodes, fewer rebuilds) at higher sampling-phase cost;
* **bootstrap repetitions** — more trees widen intervals slightly but
  protect against optimistic criteria;
* **bucket budget** — the Lemma 3.1 check's resolution: tiny budgets
  cause false-alarm rebuilds, large ones only cost memory;
* **interval slack** — adaptive plateau widening trades held-tuple
  memory against rebuild risk.

Every configuration must still produce the exact reference tree — the
ablations move cost, never correctness (asserted).
"""

from __future__ import annotations

import dataclasses
import time

import pytest

from repro.bench import RunResult, WorkloadSpec, default_configs, scaled
from repro.core import boat_build
from repro.splits import ImpuritySplitSelection
from repro.tree import build_reference_tree, trees_equal

N_TUPLES = scaled(40_000)
SPEC = WorkloadSpec(function_id=7, n_tuples=N_TUPLES, noise=0.1, seed=77)


def _ablate(workloads, collector, benchmark, experiment, x_label, variants):
    table = workloads.table(SPEC)
    split, base, _, _ = default_configs(N_TUPLES)
    method = ImpuritySplitSelection("gini")
    reference = build_reference_tree(table.read_all(), table.schema, method, split)
    holder = {}

    def once():
        rows = []
        for x, overrides in variants:
            config = dataclasses.replace(base, **overrides)
            start = time.perf_counter()
            result = boat_build(table, method, split, config)
            elapsed = time.perf_counter() - start
            assert trees_equal(result.tree, reference), f"{experiment} x={x}"
            finalize = result.report.finalize
            rows.append(
                (
                    x,
                    RunResult(
                        algorithm="BOAT",
                        workload=f"{SPEC.describe()} {x_label}={x}",
                        n_tuples=N_TUPLES,
                        wall_seconds=elapsed,
                        scans=2,
                        tuples_read=0,
                        tree_nodes=result.tree.n_nodes,
                        tree_leaves=result.tree.n_leaves,
                        extra={
                            "rebuilds": float(finalize.rebuilds if finalize else 0),
                            "held": float(
                                finalize.held_candidates if finalize else 0
                            ),
                        },
                    ),
                )
            )
        holder["rows"] = rows

    benchmark.pedantic(once, rounds=1, iterations=1)
    print(f"\n== Ablation: {experiment} (F7, n={N_TUPLES}) ==")
    print(f"{x_label:>12} {'seconds':>8} {'rebuilds':>9} {'held':>8}")
    for x, row in holder["rows"]:
        print(
            f"{x!s:>12} {row.wall_seconds:>8.2f} "
            f"{row.extra['rebuilds']:>9.0f} {row.extra['held']:>8.0f}"
        )
    for x, row in holder["rows"]:
        collector.add(f"Ablation: {experiment}", x_label, x, row)
    return holder["rows"]


def test_ablation_sample_size(benchmark, workloads, collector):
    variants = [
        (n, {"sample_size": n, "bootstrap_subsample": max(n // 4, 500)})
        for n in (N_TUPLES // 40, N_TUPLES // 10, N_TUPLES // 4)
    ]
    _ablate(
        workloads, collector, benchmark, "sample size", "sample", variants
    )


def test_ablation_bootstrap_repetitions(benchmark, workloads, collector):
    variants = [(b, {"bootstrap_repetitions": b}) for b in (5, 20, 40)]
    _ablate(
        workloads, collector, benchmark, "bootstrap repetitions", "b", variants
    )


def test_ablation_bucket_budget(benchmark, workloads, collector):
    variants = [(budget, {"bucket_budget": budget}) for budget in (4, 16, 64, 256)]
    rows = _ablate(
        workloads, collector, benchmark, "bucket budget", "buckets", variants
    )
    # Coarse buckets must never rebuild *less* than fine ones.
    coarse = rows[0][1].extra["rebuilds"]
    fine = rows[-1][1].extra["rebuilds"]
    assert coarse >= fine


def test_ablation_interval_slack(benchmark, workloads, collector):
    variants = [
        (slack, {"interval_impurity_slack": slack}) for slack in (0.0, 0.05, 0.2)
    ]
    rows = _ablate(
        workloads, collector, benchmark, "interval impurity slack", "slack", variants
    )
    # More slack -> more held tuples (monotone by construction).
    held = [row.extra["held"] for _, row in rows]
    assert held[0] <= held[-1]
