"""§5: BOAT instantiated with a non-impurity split selection method (QUEST).

Compares BOAT-QUEST (two scans: sampling + cleanup, sufficient statistics
verified exactly) against the one-scan-per-level QUEST baseline.
Expected shape (asserted): BOAT-QUEST needs exactly two scans, the
level-wise baseline one per level, and the trees agree up to QUEST's
floating-point summation-order caveat.
"""

from __future__ import annotations

import pytest

from repro.bench import RunResult, WorkloadSpec, scaled
from repro.config import BoatConfig, SplitConfig
from repro.core import quest_boat_build
from repro.rainforest import build_quest_levelwise
from repro.splits import QuestSplitSelection
from repro.tree import trees_equivalent

N_TUPLES = scaled(40_000)
SPLIT = SplitConfig(min_samples_split=400, min_samples_leaf=100, max_depth=8)
BOAT = BoatConfig(
    sample_size=max(N_TUPLES // 10, 2000),
    bootstrap_repetitions=12,
    bootstrap_subsample=max(N_TUPLES // 40, 1000),
    seed=23,
)


@pytest.mark.parametrize("function_id", [1, 6, 7])
def test_quest_boat_vs_levelwise(benchmark, function_id, workloads, collector):
    spec = WorkloadSpec(
        function_id=function_id, n_tuples=N_TUPLES, noise=0.05, seed=23
    )
    table = workloads.table(spec)
    io = table.io_stats
    holder = {}

    def once():
        io.reset()
        boat = quest_boat_build(table, QuestSplitSelection(), SPLIT, BOAT)
        holder["boat"] = boat
        holder["boat_scans"] = io.full_scans
        holder["boat_seconds"] = boat.report.wall_seconds
        io.reset()
        levelwise = build_quest_levelwise(table, QuestSplitSelection(), SPLIT)
        holder["levelwise"] = levelwise
        holder["level_scans"] = io.full_scans

    benchmark.pedantic(once, rounds=1, iterations=1)
    boat = holder["boat"]
    levelwise = holder["levelwise"]
    assert holder["boat_scans"] == 2
    assert holder["level_scans"] == levelwise.report.levels
    assert holder["level_scans"] > 2
    boat_seconds = sum(holder["boat_seconds"].values())
    collector.add(
        "§5 non-impurity CL: BOAT-QUEST vs level-wise QUEST",
        "function",
        f"F{function_id}",
        RunResult(
            algorithm="BOAT-QUEST",
            workload=spec.describe(),
            n_tuples=N_TUPLES,
            wall_seconds=boat_seconds,
            scans=holder["boat_scans"],
            tuples_read=0,
            tree_nodes=boat.tree.n_nodes,
            tree_leaves=boat.tree.n_leaves,
        ),
    )
    collector.add(
        "§5 non-impurity CL: BOAT-QUEST vs level-wise QUEST",
        "function",
        f"F{function_id}",
        RunResult(
            algorithm="Levelwise-QUEST",
            workload=spec.describe(),
            n_tuples=N_TUPLES,
            wall_seconds=levelwise.report.wall_seconds,
            scans=holder["level_scans"],
            tuples_read=0,
            tree_nodes=levelwise.tree.n_nodes,
            tree_leaves=levelwise.tree.n_leaves,
        ),
    )


def test_quest_boat_matches_reference(benchmark, workloads):
    from repro.tree import build_reference_tree

    spec = WorkloadSpec(function_id=1, n_tuples=N_TUPLES, noise=0.05, seed=24)
    table = workloads.table(spec)
    holder = {}

    def once():
        holder["boat"] = quest_boat_build(table, QuestSplitSelection(), SPLIT, BOAT)
        family = table.read_all()
        holder["reference"] = build_reference_tree(
            family, table.schema, QuestSplitSelection(), SPLIT
        )

    benchmark.pedantic(once, rounds=1, iterations=1)
    assert trees_equivalent(
        holder["boat"].tree, holder["reference"], rel_tol=1e-6
    )
