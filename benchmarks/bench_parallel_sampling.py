"""Sampling-phase speedup from the worker pool (Fig. 4 workload).

Runs the Fig. 4 workload (Function 1, 10 % noise) with the bootstrap
phase at 1 and 4 workers and reports the sampling-phase wall-clock
speedup.  The output tree is asserted byte-identical across worker
counts — parallelism may only change speed, never the result.

The speedup itself is reported, not asserted: on a single-CPU runner a
process pool cannot beat the serial path (there is nothing to run the
extra workers on), and CI boxes vary.  Set ``REPRO_REQUIRE_SPEEDUP=1.3``
(or any floor) on a machine with >= 4 free cores to enforce the
acceptance threshold.
"""

from __future__ import annotations

import os

import pytest

from repro.bench import WorkloadSpec, default_configs, run_boat, scaled
from repro.config import BoatConfig
from repro.splits import ImpuritySplitSelection
from repro.tree import tree_to_json

N_TUPLES = scaled(40_000)
WORKER_COUNTS = [1, 4]


def _speedup_floor() -> float | None:
    raw = os.environ.get("REPRO_REQUIRE_SPEEDUP")
    return float(raw) if raw else None


@pytest.mark.parametrize("n_workers", WORKER_COUNTS)
def test_sampling_phase_workers(benchmark, n_workers, workloads, collector):
    spec = WorkloadSpec(function_id=1, n_tuples=N_TUPLES, noise=0.1, seed=4)
    table = workloads.table(spec)
    split, boat_cfg, _, _ = default_configs(N_TUPLES)
    boat_cfg = BoatConfig(
        **{
            **boat_cfg.__dict__,
            "n_workers": n_workers,
            "parallel_backend": "process" if n_workers > 1 else "serial",
        }
    )
    method = ImpuritySplitSelection("gini")
    holder = {}

    def once():
        holder["result"] = run_boat(spec, table, method, split, boat_cfg)

    benchmark.pedantic(once, rounds=1, iterations=1)
    result = holder["result"]
    assert result.workers == n_workers
    collector.add(
        "Sampling-phase speedup: F1 (noise 10%), 1 vs 4 workers",
        "workers",
        n_workers,
        result,
    )


def test_parallel_tree_identical_and_speedup(workloads):
    """1-worker and 4-worker builds emit byte-identical trees; report speedup."""
    spec = WorkloadSpec(function_id=1, n_tuples=N_TUPLES, noise=0.1, seed=4)
    split, base_cfg, _, _ = default_configs(N_TUPLES)
    method = ImpuritySplitSelection("gini")
    sampling_seconds = {}
    serialized = {}
    for n_workers in WORKER_COUNTS:
        from repro.core import boat_build

        table = workloads.table(spec)
        cfg = BoatConfig(
            **{
                **base_cfg.__dict__,
                "n_workers": n_workers,
                "parallel_backend": "process" if n_workers > 1 else "serial",
            }
        )
        result = boat_build(table, method, split, cfg)
        sampling_seconds[n_workers] = result.report.wall_seconds["sampling"]
        serialized[n_workers] = tree_to_json(result.tree)
    assert serialized[1] == serialized[4], "worker count changed the tree"
    speedup = sampling_seconds[1] / max(sampling_seconds[4], 1e-9)
    print(
        f"\nsampling phase: {sampling_seconds[1]:.3f}s @1 worker, "
        f"{sampling_seconds[4]:.3f}s @4 workers -> {speedup:.2f}x "
        f"({os.cpu_count()} CPUs visible)"
    )
    floor = _speedup_floor()
    if floor is not None:
        assert speedup >= floor, (
            f"sampling-phase speedup {speedup:.2f}x below required {floor}x"
        )
