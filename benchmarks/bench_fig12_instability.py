"""Figure 12: instability of impurity-based split selection.

The paper's scenario: a numerical attribute whose impurity profile has
two near-equal minima far apart (attribute values ~20 and ~60 of 0–80).
Tiny perturbations of the training set flip the global minimum between
them, so bootstrap split points are *bimodal*, the confidence interval
spans both modes, and tree growth below the node effectively restarts
(bootstrap trees disagree about the children).

Regenerated series: the bootstrap split-point distribution's mass around
each mode, the resulting interval width and held fraction — and the
assertion that BOAT still produces exactly the reference tree.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import RunResult, scaled
from repro.config import BoatConfig, SplitConfig
from repro.core import boat_build, sampling_phase
from repro.splits import ImpuritySplitSelection
from repro.storage import CLASS_COLUMN, Attribute, MemoryTable, Schema
from repro.tree import build_reference_tree, trees_equal

N_TUPLES = scaled(40_000)


def bimodal_dataset(n: int, seed: int = 0) -> tuple[Schema, np.ndarray]:
    """Uniform x in [0, 80]; class 1 exactly inside the band (20, 60].

    Splits at 20 and at 60 have identical expected impurity, so the
    empirical argmin is a coin flip — the paper's Figure 12 situation.
    """
    schema = Schema([Attribute.numerical("x")], n_classes=2)
    rng = np.random.default_rng(seed)
    data = schema.empty(n)
    data["x"] = rng.uniform(0.0, 80.0, n)
    data[CLASS_COLUMN] = ((data["x"] > 20.0) & (data["x"] <= 60.0)).astype(np.int32)
    return schema, data


def test_fig12_bootstrap_split_points_are_bimodal(benchmark, collector):
    schema, data = bimodal_dataset(N_TUPLES, seed=12)
    method = ImpuritySplitSelection("gini")
    split_config = SplitConfig(min_samples_split=100, min_samples_leaf=25, max_depth=4)
    config = BoatConfig(
        sample_size=max(N_TUPLES // 10, 2000),
        bootstrap_repetitions=40,
        # Subsamples smaller than the sample (the paper's 50K-of-200K):
        # bootstrap noise must dominate the base sample's own bias between
        # the two minima for the bimodality to show.
        bootstrap_subsample=max(N_TUPLES // 80, 500),
        seed=5,
    )
    holder = {}

    def once():
        rng = np.random.default_rng(config.seed)
        idx = rng.choice(len(data), config.sample_size, replace=False)
        holder["result"] = sampling_phase(
            data[idx], schema, method, split_config, config, len(data), rng
        )
        # Collect the roots' bootstrap split points directly.
        from repro.storage import bootstrap_resample
        from repro.tree import build_reference_tree as refbuild

        rng2 = np.random.default_rng(99)
        points = []
        subsample = config.bootstrap_subsample or len(idx)
        for _ in range(40):
            resample = bootstrap_resample(data[idx], subsample, rng2)
            tree = refbuild(resample, schema, method, split_config)
            if not tree.root.is_leaf:
                points.append(tree.root.split.value)
        holder["points"] = np.array(points)

    benchmark.pedantic(once, rounds=1, iterations=1)
    points = holder["points"]
    near_low = np.sum(np.abs(points - 20.0) < 5.0)
    near_high = np.sum(np.abs(points - 60.0) < 5.0)
    print(
        f"\nFigure 12: {len(points)} bootstrap split points -> "
        f"{near_low} near 20, {near_high} near 60 "
        f"(bimodal fraction {(near_low + near_high) / len(points):.0%})"
    )
    assert near_low + near_high >= 0.9 * len(points)
    assert near_low >= 4 and near_high >= 4, "both modes must attract mass"
    criterion = holder["result"].root.criterion
    assert criterion is not None
    width = criterion.high - criterion.low
    print(f"coarse interval [{criterion.low:.2f}, {criterion.high:.2f}] width {width:.2f}")
    assert width > 30.0, "the interval must span both minima"


def test_fig12_boat_remains_exact_under_instability(benchmark, collector):
    schema, data = bimodal_dataset(N_TUPLES, seed=13)
    method = ImpuritySplitSelection("gini")
    split_config = SplitConfig(min_samples_split=100, min_samples_leaf=25, max_depth=4)
    config = BoatConfig(
        sample_size=max(N_TUPLES // 10, 2000), bootstrap_repetitions=20, seed=7
    )
    table = MemoryTable(schema, data)
    holder = {}

    def once():
        holder["boat"] = boat_build(table, method, split_config, config)

    benchmark.pedantic(once, rounds=1, iterations=1)
    result = holder["boat"]
    reference = build_reference_tree(data, schema, method, split_config)
    assert trees_equal(result.tree, reference)
    held = result.report.finalize.held_candidates if result.report.finalize else 0
    print(
        f"\nFigure 12: BOAT exact under instability; held {held} tuples "
        f"({held / N_TUPLES:.0%} of the data), "
        f"rebuilds={result.report.finalize.rebuilds if result.report.finalize else 0}"
    )
    collector.add(
        "Figure 12: instability scenario (band dataset)",
        "n",
        N_TUPLES,
        RunResult(
            algorithm="BOAT",
            workload=f"band n={N_TUPLES}",
            n_tuples=N_TUPLES,
            wall_seconds=result.report.total_seconds,
            scans=0,
            tuples_read=0,
            tree_nodes=result.tree.n_nodes,
            tree_leaves=result.tree.n_leaves,
            extra={"held_fraction": held / N_TUPLES},
        ),
    )
