"""Shared-scan forest construction: M members on two physical scans.

Builds bagged forests at M ∈ {1, 4, 8} over one throttled 1M-tuple table
(at scale 1) and, for M = 4, the same ensemble the naive way — M
independent ``boat_build`` runs over the members' resamples, each paying
its own two scans.  The headline numbers:

* ``IOStats.full_scans == 2`` for every forest regardless of M;
* at full size, the M = 8 forest finishes in under
  ``MAX_M8_OVER_M1``x the M = 1 wall clock (the scans are shared, so
  adding members adds only streaming compute, overlapped across worker
  threads);
* the recorded ``shared_vs_independent_speedup`` for M = 4 (the naive
  route pays 4x the I/O).

The simulated-I/O throttle stays at the harness default (10 MB/s): this
experiment is about scan economics, the regime forests share scans for.
"""

from __future__ import annotations

import time
from dataclasses import replace

import pytest

from repro.bench import RunResult, WorkloadSpec, scaled, simulated_io_mbps
from repro.config import BoatConfig, SplitConfig
from repro.core import boat_build
from repro.forest import ResampleTable, forest_build, plan_members
from repro.splits import ImpuritySplitSelection
from repro.storage import DiskTable, IOStats
from repro.tree import tree_to_json

N_TUPLES = scaled(1_000_000)
SPEC = WorkloadSpec(function_id=1, n_tuples=N_TUPLES, noise=0.1, seed=9)
MEMBER_COUNTS = (1, 4, 8)
#: Ensemble size for the shared-vs-independent comparison.
INDEPENDENT_M = 4
#: Required bound on wall(M=8) / wall(M=1) at full size.
MAX_M8_OVER_M1 = 3.0

SPLIT_CONFIG = SplitConfig(
    min_samples_split=max(N_TUPLES // 500, 20),
    min_samples_leaf=max(N_TUPLES // 2000, 5),
    max_depth=5,
)


def _boat_config() -> BoatConfig:
    # Modest per-member sampling phases: the experiment isolates scan
    # economics, and the sampling work is the one cost that cannot be
    # shared across members.
    sample = max(N_TUPLES // 100, 2000)
    return BoatConfig(
        sample_size=sample,
        bootstrap_repetitions=5,
        bootstrap_subsample=max(sample // 4, 600),
        seed=17,
        n_workers=4,
    )


@pytest.fixture(scope="module")
def forest_table(workloads):
    return workloads.table(SPEC)


def test_forest_shared_scan_scaling(benchmark, forest_table, collector):
    """Forest wall clock vs M, plus the M=4 independent-builds baseline."""
    config = _boat_config()
    method = ImpuritySplitSelection("gini")
    runs: dict[int, dict] = {}
    independent: dict = {}

    def once():
        for n_members in MEMBER_COUNTS:
            io = IOStats()
            table = DiskTable.open(forest_table.path, io)
            table.set_simulated_throughput(simulated_io_mbps())
            start = time.perf_counter()
            result = forest_build(
                table, n_members, method, SPLIT_CONFIG, config
            )
            seconds = time.perf_counter() - start
            table.close()
            runs[n_members] = {
                "forest": result.forest,
                "wall_s": seconds,
                "io": io,
            }

        # The naive route: INDEPENDENT_M standalone builds, each over its
        # member's resample, each paying its own two full scans.
        plans = plan_members(config.seed, INDEPENDENT_M, N_TUPLES)
        io = IOStats()
        trees = []
        start = time.perf_counter()
        for plan in plans:
            table = DiskTable.open(forest_table.path, io)
            table.set_simulated_throughput(simulated_io_mbps())
            result = boat_build(
                ResampleTable(table, plan.weights),
                method,
                SPLIT_CONFIG,
                replace(config, seed=plan.build_seed),
            )
            trees.append(result.tree)
            table.close()
        independent["wall_s"] = time.perf_counter() - start
        independent["io"] = io
        independent["trees"] = trees

    benchmark.pedantic(once, rounds=1, iterations=1)

    # Two physical scans at every ensemble size.
    for n_members, run in runs.items():
        assert run["io"].full_scans == 2, (n_members, run["io"])
    assert independent["io"].full_scans == 2 * INDEPENDENT_M

    # The shared-scan members ARE the standalone trees, byte for byte.
    shared = runs[INDEPENDENT_M]["forest"].members
    for member, standalone in zip(shared, independent["trees"]):
        assert tree_to_json(member) == tree_to_json(standalone)

    speedup = independent["wall_s"] / max(runs[INDEPENDENT_M]["wall_s"], 1e-9)
    for n_members in MEMBER_COUNTS:
        run = runs[n_members]
        forest = run["forest"]
        extra = {
            "workers": config.n_workers,
            "wall_vs_m1": run["wall_s"] / max(runs[1]["wall_s"], 1e-9),
        }
        if n_members == INDEPENDENT_M:
            extra["independent_builds_seconds"] = independent["wall_s"]
            extra["shared_vs_independent_speedup"] = speedup
        collector.add(
            "Shared-scan forest: M bagged members on two scans, F1 (noise 10%)",
            "members",
            n_members,
            RunResult(
                algorithm=f"forest[M={n_members}]",
                workload=SPEC.describe(),
                n_tuples=N_TUPLES,
                wall_seconds=run["wall_s"],
                scans=run["io"].full_scans,
                tuples_read=run["io"].tuples_read,
                tree_nodes=forest.n_nodes,
                tree_leaves=sum(t.n_leaves for t in forest.members),
                extra=extra,
            ),
        )

    if N_TUPLES >= 200_000:
        ratio = runs[8]["wall_s"] / max(runs[1]["wall_s"], 1e-9)
        assert ratio < MAX_M8_OVER_M1, (
            f"M=8 forest took {ratio:.2f}x the M=1 build at {N_TUPLES} "
            f"tuples (bound {MAX_M8_OVER_M1}x): the scans are not shared"
        )
        assert speedup > 1.5, (
            f"shared scan beat {INDEPENDENT_M} independent builds by only "
            f"{speedup:.2f}x under the I/O throttle"
        )
