"""Serving-path benchmarks: compiled kernel vs recursive routing, batcher latency.

Two experiments:

* **Compiled predictor throughput** — one 1M-row batch (scaled by
  ``REPRO_BENCH_SCALE``) pushed through the recursive ``Node`` walk and
  the compiled array kernel.  The outputs are asserted identical; at
  full scale the compiled path must clear the 3x acceptance floor.

* **Batcher latency** — a stream of small requests through the
  :class:`~repro.serve.RequestBatcher`; the recorded row carries the
  p50/p99 latency summary the serving layer reports.

Both series are appended to ``bench_results.jsonl`` by the shared
collector.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench import RunResult, WorkloadSpec, scaled
from repro.config import SplitConfig
from repro.serve import ModelRegistry, RequestBatcher, ServeConfig
from repro.splits import ImpuritySplitSelection
from repro.tree import build_reference_tree

N_SERVE_ROWS = scaled(1_000_000)
N_TRAIN_ROWS = scaled(100_000)
SPEC = WorkloadSpec(function_id=5, n_tuples=N_SERVE_ROWS, noise=0.1, seed=9)


def _build_model():
    generator = SPEC.generator()
    train = generator.generate(N_TRAIN_ROWS)
    tree = build_reference_tree(
        train,
        generator.schema,
        ImpuritySplitSelection("gini"),
        SplitConfig(
            min_samples_split=max(N_TRAIN_ROWS // 500, 20),
            min_samples_leaf=max(N_TRAIN_ROWS // 2000, 5),
            max_depth=12,
        ),
    )
    return generator, tree


def _result(algorithm: str, tree, seconds: float, rows: int, **extra) -> RunResult:
    return RunResult(
        algorithm=algorithm,
        workload=SPEC.describe(),
        n_tuples=rows,
        wall_seconds=seconds,
        scans=0,
        tuples_read=rows,
        tree_nodes=tree.n_nodes,
        tree_leaves=tree.n_leaves,
        extra={"rows_per_s": rows / max(seconds, 1e-9), **extra},
    )


def test_compiled_vs_recursive_throughput(collector):
    generator, tree = _build_model()
    batch = generator.generate(N_SERVE_ROWS)
    predictor = tree.compile()

    # Warm both paths (page in the batch, JIT numpy internals) off-clock.
    tree.predict(batch[:10_000])
    predictor.predict(batch[:10_000])

    start = time.perf_counter()
    recursive = tree.predict(batch)
    recursive_s = time.perf_counter() - start

    start = time.perf_counter()
    compiled = predictor.predict(batch)
    compiled_s = time.perf_counter() - start

    assert np.array_equal(recursive, compiled), "serving kernel diverged"
    speedup = recursive_s / max(compiled_s, 1e-9)
    print(
        f"\nrouting {N_SERVE_ROWS} rows through {tree.n_nodes} nodes: "
        f"recursive {recursive_s:.3f}s "
        f"({N_SERVE_ROWS / recursive_s:,.0f} rows/s), "
        f"compiled {compiled_s:.3f}s "
        f"({N_SERVE_ROWS / compiled_s:,.0f} rows/s) -> {speedup:.2f}x"
    )
    collector.add(
        "Serving: compiled kernel vs recursive routing (1M-row batch)",
        "path",
        "recursive",
        _result("Recursive-route", tree, recursive_s, N_SERVE_ROWS),
    )
    collector.add(
        "Serving: compiled kernel vs recursive routing (1M-row batch)",
        "path",
        "compiled",
        _result(
            "Compiled-route", tree, compiled_s, N_SERVE_ROWS, speedup=speedup
        ),
    )
    if N_SERVE_ROWS >= 1_000_000:
        assert speedup >= 3.0, (
            f"compiled predictor {speedup:.2f}x below the 3x acceptance floor"
        )


def test_batcher_latency(collector):
    generator, tree = _build_model()
    registry = ModelRegistry()
    registry.publish(tree)
    request_rows = 512
    n_requests = max(scaled(200_000) // request_rows, 50)
    requests = generator.generate(request_rows * n_requests)
    config = ServeConfig(max_batch_size=8192, max_delay_ms=1.0)

    # Closed-loop load with a bounded in-flight window, so the generator
    # respects the queue's backpressure instead of tripping it.
    window = config.queue_capacity // (2 * request_rows)
    start = time.perf_counter()
    with RequestBatcher(registry, config) as batcher:
        in_flight: list = []
        for i in range(n_requests):
            if len(in_flight) >= window:
                in_flight.pop(0).result(timeout=60.0)
            in_flight.append(
                batcher.submit(
                    requests[i * request_rows : (i + 1) * request_rows]
                )
            )
        for ticket in in_flight:
            ticket.result(timeout=60.0)
        stats = batcher.stats()
    elapsed = time.perf_counter() - start

    latency = stats["latency"]
    total_rows = stats["rows"]
    assert stats["requests"] == n_requests
    assert stats["timeouts"] == 0
    print(
        f"\nbatcher: {n_requests} requests x {request_rows} rows in "
        f"{stats['batches']} batches, {elapsed:.3f}s "
        f"({total_rows / elapsed:,.0f} rows/s), "
        f"p50 {latency['p50_ms']}ms p99 {latency['p99_ms']}ms"
    )
    collector.add(
        "Serving: request batcher latency",
        "path",
        "batcher",
        _result(
            "Batcher",
            tree,
            elapsed,
            total_rows,
            p50_ms=latency["p50_ms"],
            p99_ms=latency["p99_ms"],
            batches=float(stats["batches"]),
        ),
    )
