"""Figures 10–11: construction time vs number of extra random attributes.

Paper setup: records gain 0–8 predictively-useless uniform attributes;
the tree is unchanged (no split selection method ever picks them), but
every algorithm must process the wider records.  Expected shape
(asserted): BOAT scales roughly linearly in the number of extra
attributes and still wins, and the extra attributes never appear in the
final tree.
"""

from __future__ import annotations

import pytest

from repro.bench import (
    WorkloadSpec,
    default_configs,
    run_boat,
    run_rf_hybrid,
    run_rf_vertical,
    scaled,
)
from repro.splits import ImpuritySplitSelection

N_TUPLES = scaled(40_000)
EXTRA_COUNTS = [0, 2, 4, 8]
ALGORITHMS = {
    "BOAT": run_boat,
    "RF-Hybrid": run_rf_hybrid,
    "RF-Vertical": run_rf_vertical,
}


def _run(fig, function_id, algorithm, extra, workloads, collector, benchmark):
    spec = WorkloadSpec(
        function_id=function_id,
        n_tuples=N_TUPLES,
        noise=0.1,
        extra_numeric=extra,
        seed=10 + fig,
    )
    table = workloads.table(spec)
    split, boat, hybrid, vertical = default_configs(N_TUPLES)
    method = ImpuritySplitSelection("gini")
    config = {"BOAT": boat, "RF-Hybrid": hybrid, "RF-Vertical": vertical}[algorithm]
    holder = {}

    def once():
        holder["result"] = ALGORITHMS[algorithm](spec, table, method, split, config)

    benchmark.pedantic(once, rounds=1, iterations=1)
    collector.add(
        f"Figure {fig}: time vs extra attributes, F{function_id} (n={N_TUPLES})",
        "extra attrs",
        extra,
        holder["result"],
    )


@pytest.mark.parametrize("extra", EXTRA_COUNTS)
@pytest.mark.parametrize("algorithm", list(ALGORITHMS))
def test_fig10_f1(benchmark, algorithm, extra, workloads, collector):
    _run(10, 1, algorithm, extra, workloads, collector, benchmark)


@pytest.mark.parametrize("extra", EXTRA_COUNTS)
@pytest.mark.parametrize("algorithm", list(ALGORITHMS))
def test_fig11_f6(benchmark, algorithm, extra, workloads, collector):
    _run(11, 6, algorithm, extra, workloads, collector, benchmark)


def test_extra_attributes_never_split_on(benchmark, workloads):
    """The split selection method must ignore pure-noise attributes.

    The claim is exact in the noiseless setting: Function 1's structure
    is fully captured by the age splits, every family below them is pure,
    and no random attribute is ever consulted.  (With label noise any
    greedy grower — the paper's included — eventually noise-fits deep
    small families where a 2000-candidate random attribute can win a
    zero-signal contest; the timing figures above cover that regime.)
    """
    from repro.config import SplitConfig
    from repro.core import boat_build

    spec = WorkloadSpec(
        function_id=1, n_tuples=N_TUPLES, noise=0.0, extra_numeric=4, seed=3
    )
    table = workloads.table(spec)
    _, boat_cfg, _, _ = default_configs(N_TUPLES)
    split = SplitConfig(
        min_samples_split=N_TUPLES // 20,
        min_samples_leaf=N_TUPLES // 80,
        max_depth=8,
    )
    method = ImpuritySplitSelection("gini")
    holder = {}

    def once():
        holder["tree"] = boat_build(table, method, split, boat_cfg).tree

    benchmark.pedantic(once, rounds=1, iterations=1)
    tree = holder["tree"]
    schema = table.schema
    used = {
        schema[node.split.attribute_index].name
        for node in tree.internal_nodes()
    }
    assert not any(name.startswith("extra_") for name in used), sorted(used)
