"""Scan-throughput and build scaling versus shard count.

Partitions one workload table into K = 1, 2, 4 shards and measures (a)
sequential scan throughput through :class:`ShardedTable` — a regression
guard for the grid-aligned re-batching fix, which removed the per-batch
``np.concatenate`` collapse (76 → 11 Mrows/s at K=4 before the fix),
(b) aggregate scan throughput with one reader per shard, the access
pattern of the data-parallel cleanup phase, where K=4 must meet or beat
K=1, and (c) the sharded data-parallel build.  Series are appended to
``bench_results.jsonl`` by the benchmarks conftest.

The build trees are asserted byte-identical to the flat build's at
every shard count — sharding may only change speed, never the result.
Scan benchmarks disable the simulated-disk throttle: they measure the
in-memory re-batching path, not the simulated 1999 disk.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.bench import RunResult, WorkloadSpec, default_configs, scaled
from repro.core import boat_build
from repro.shard import sharded_boat_build
from repro.splits import ImpuritySplitSelection
from repro.storage import DiskTable, IOStats, ShardedTable, partition_table
from repro.tree import tree_to_json

N_TUPLES = scaled(40_000)
SHARD_COUNTS = [1, 2, 4]
SPEC = WorkloadSpec(function_id=1, n_tuples=N_TUPLES, noise=0.1, seed=4)

#: Scan benchmarks use a bigger table (the same workload bench_kernels
#: materializes, so a combined session pays for it once) and an explicit
#: batch size small enough that a scan is many batches — the default
#: 65536 would make the whole table one or two batches of noise.
SCAN_TUPLES = scaled(1_000_000)
SCAN_SPEC = WorkloadSpec(function_id=1, n_tuples=SCAN_TUPLES, noise=0.1, seed=9)
SCAN_BATCH_ROWS = 8192
SCAN_REPEATS = 5


@pytest.fixture(scope="module")
def shard_layouts(workloads):
    """Partition the build workload once per shard count."""
    table = workloads.table(SPEC)
    root = tempfile.mkdtemp(prefix="repro-bench-shards-")
    layouts = {}
    for k in SHARD_COUNTS:
        directory = f"{root}/k{k}"
        partition_table(table, directory, k)
        layouts[k] = directory
    yield {"flat": table.path, "layouts": layouts}
    shutil.rmtree(root, ignore_errors=True)


@pytest.fixture(scope="module")
def scan_layouts(workloads):
    """Partition the (larger) scan workload once per shard count."""
    table = workloads.table(SCAN_SPEC)
    table.set_simulated_throughput(None)
    root = tempfile.mkdtemp(prefix="repro-bench-scan-shards-")
    layouts = {}
    for k in SHARD_COUNTS:
        directory = f"{root}/k{k}"
        partition_table(table, directory, k)
        layouts[k] = directory
    yield layouts
    shutil.rmtree(root, ignore_errors=True)


def _scan_result(name: str, seconds: float, io: IOStats, workers: int) -> RunResult:
    return RunResult(
        algorithm=name,
        workload=SCAN_SPEC.describe(),
        n_tuples=SCAN_TUPLES,
        wall_seconds=seconds,
        scans=io.full_scans,
        tuples_read=io.tuples_read,
        tree_nodes=0,
        tree_leaves=0,
        workers=workers,
        extra={"mrows_per_s": SCAN_TUPLES / max(seconds, 1e-9) / 1e6},
    )


def _best_of(scan_once, repeats: int = SCAN_REPEATS) -> float:
    """Warm the page cache, then return the fastest of ``repeats`` scans."""
    scan_once()
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        rows = scan_once()
        times.append(time.perf_counter() - start)
        assert rows == SCAN_TUPLES
    return min(times)


def test_scan_throughput_vs_shard_count(benchmark, scan_layouts, collector):
    """Sequential single-reader scan: K=4 must stay near the K=1 rate."""
    best = {}
    ios = {}

    def once():
        for k in SHARD_COUNTS:
            io = IOStats()
            table = ShardedTable.open(scan_layouts[k], io)
            try:
                best[k] = _best_of(
                    lambda: sum(
                        len(batch)
                        for batch in table.scan(batch_rows=SCAN_BATCH_ROWS)
                    )
                )
            finally:
                table.close()
            ios[k] = io

    benchmark.pedantic(once, rounds=1, iterations=1)
    for k in SHARD_COUNTS:
        collector.add(
            "Sharded scan throughput: F1 (noise 10%), K=1/2/4 shards",
            "shards",
            k,
            _scan_result(f"scan@{k}sh", best[k], ios[k], k),
        )
    # Regression guard for the pre-fix collapse (scan@4sh was ~7x slower
    # than scan@1sh); residual per-shard costs and timer noise get a
    # tolerant margin, a re-batching copy-per-batch regression does not.
    # Scaled-down runs skip the ratio: fixed per-shard costs dominate.
    if SCAN_TUPLES >= 200_000:
        assert best[4] <= 2.0 * best[1], (
            f"sharded sequential scan regressed: K=4 took {best[4]:.4f}s vs "
            f"K=1 {best[1]:.4f}s"
        )


#: Simulated per-shard device bandwidth for the parallel-scan figure.
#: An in-page-cache scan is memory-bandwidth bound, where extra readers
#: buy nothing; the sharded deployment the paper targets puts each
#: partition on its own device, so each shard gets its own throttled
#: simulated disk and aggregate bandwidth scales with K.
SHARD_DISK_MBPS = 200.0


def test_parallel_shard_scan_throughput(benchmark, scan_layouts, collector):
    """One reader per shard, one simulated disk per shard.

    This is the cleanup phase's access pattern in the sharded build —
    every worker streams its own shard.  Aggregate scan time at K=4
    must firmly beat K=1: with per-shard devices the scan is I/O bound
    and K readers drain K disks concurrently.
    """
    best = {}

    def scan_shard(shard) -> int:
        return sum(
            len(batch) for batch in shard.scan(batch_rows=SCAN_BATCH_ROWS)
        )

    def once():
        for k in SHARD_COUNTS:
            table = ShardedTable.open(scan_layouts[k], IOStats())
            try:
                shards = table.shard_tables
                for shard in shards:
                    shard.set_simulated_throughput(SHARD_DISK_MBPS)
                with ThreadPoolExecutor(max_workers=k) as pool:
                    best[k] = _best_of(
                        lambda: sum(pool.map(scan_shard, shards))
                    )
            finally:
                table.close()

    benchmark.pedantic(once, rounds=1, iterations=1)
    for k in SHARD_COUNTS:
        io = IOStats()
        io.tuples_read = SCAN_TUPLES
        io.full_scans = 1
        collector.add(
            "Sharded parallel scan: F1 (noise 10%), one reader+disk per shard",
            "shards",
            k,
            _scan_result(f"pscan@{k}sh", best[k], io, k),
        )
    if SCAN_TUPLES >= 200_000:
        assert best[4] <= 0.5 * best[1], (
            f"parallel sharded scan does not scale: K=4 took {best[4]:.4f}s "
            f"vs K=1 {best[1]:.4f}s"
        )


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_sharded_build_vs_shard_count(
    benchmark, n_shards, shard_layouts, collector
):
    split, boat_cfg, _, _ = default_configs(N_TUPLES)
    method = ImpuritySplitSelection("gini")

    flat_io = IOStats()
    flat = DiskTable.open(shard_layouts["flat"], flat_io)
    reference = boat_build(flat, method, split, boat_cfg)
    flat.close()

    io = IOStats()
    table = ShardedTable.open(shard_layouts["layouts"][n_shards], io)
    holder = {}

    def once():
        start = time.perf_counter()
        holder["result"] = sharded_boat_build(
            table, method, split, boat_cfg, transport="inprocess"
        )
        holder["seconds"] = time.perf_counter() - start

    try:
        benchmark.pedantic(once, rounds=1, iterations=1)
    finally:
        table.close()
    result = holder["result"]
    assert tree_to_json(result.tree) == tree_to_json(reference.tree), (
        "sharding changed the tree"
    )
    assert io.full_scans == 2
    collector.add(
        "Sharded build: F1 (noise 10%), K=1/2/4 shards (inprocess)",
        "shards",
        n_shards,
        RunResult(
            algorithm=f"BOAT@{n_shards}sh",
            workload=SPEC.describe(),
            n_tuples=N_TUPLES,
            wall_seconds=holder["seconds"],
            scans=io.full_scans,
            tuples_read=io.tuples_read,
            tree_nodes=result.tree.n_nodes,
            tree_leaves=result.tree.n_leaves,
            workers=n_shards,
        ),
    )
