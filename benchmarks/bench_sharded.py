"""Scan-throughput and build scaling versus shard count.

Partitions one workload table into K = 1, 2, 4 shards and measures (a)
raw sequential scan throughput through :class:`ShardedTable` and (b)
the sharded data-parallel build, against the flat single-table
baselines.  Series are appended to ``bench_results.jsonl`` by the
benchmarks conftest.

The build trees are asserted byte-identical to the flat build's at
every shard count — sharding may only change speed, never the result.
"""

from __future__ import annotations

import shutil
import tempfile
import time

import pytest

from repro.bench import RunResult, WorkloadSpec, default_configs, scaled
from repro.core import boat_build
from repro.shard import sharded_boat_build
from repro.splits import ImpuritySplitSelection
from repro.storage import DiskTable, IOStats, ShardedTable, partition_table
from repro.tree import tree_to_json

N_TUPLES = scaled(40_000)
SHARD_COUNTS = [1, 2, 4]
SPEC = WorkloadSpec(function_id=1, n_tuples=N_TUPLES, noise=0.1, seed=4)


@pytest.fixture(scope="module")
def shard_layouts(workloads):
    """Partition the workload once per shard count."""
    table = workloads.table(SPEC)
    root = tempfile.mkdtemp(prefix="repro-bench-shards-")
    layouts = {}
    for k in SHARD_COUNTS:
        directory = f"{root}/k{k}"
        partition_table(table, directory, k)
        layouts[k] = directory
    yield {"flat": table.path, "layouts": layouts}
    shutil.rmtree(root, ignore_errors=True)


def _scan_result(name: str, seconds: float, io: IOStats, workers: int) -> RunResult:
    return RunResult(
        algorithm=name,
        workload=SPEC.describe(),
        n_tuples=N_TUPLES,
        wall_seconds=seconds,
        scans=io.full_scans,
        tuples_read=io.tuples_read,
        tree_nodes=0,
        tree_leaves=0,
        workers=workers,
        extra={"mrows_per_s": N_TUPLES / max(seconds, 1e-9) / 1e6},
    )


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_scan_throughput_vs_shard_count(
    benchmark, n_shards, shard_layouts, collector
):
    io = IOStats()
    table = ShardedTable.open(shard_layouts["layouts"][n_shards], io)
    holder = {}

    def once():
        start = time.perf_counter()
        rows = sum(len(batch) for batch in table.scan())
        holder["seconds"] = time.perf_counter() - start
        holder["rows"] = rows

    try:
        benchmark.pedantic(once, rounds=1, iterations=1)
    finally:
        table.close()
    assert holder["rows"] == N_TUPLES
    collector.add(
        "Sharded scan throughput: F1 (noise 10%), K=1/2/4 shards",
        "shards",
        n_shards,
        _scan_result(f"scan@{n_shards}sh", holder["seconds"], io, n_shards),
    )


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_sharded_build_vs_shard_count(
    benchmark, n_shards, shard_layouts, collector
):
    split, boat_cfg, _, _ = default_configs(N_TUPLES)
    method = ImpuritySplitSelection("gini")

    flat_io = IOStats()
    flat = DiskTable.open(shard_layouts["flat"], flat_io)
    reference = boat_build(flat, method, split, boat_cfg)
    flat.close()

    io = IOStats()
    table = ShardedTable.open(shard_layouts["layouts"][n_shards], io)
    holder = {}

    def once():
        start = time.perf_counter()
        holder["result"] = sharded_boat_build(
            table, method, split, boat_cfg, transport="inprocess"
        )
        holder["seconds"] = time.perf_counter() - start

    try:
        benchmark.pedantic(once, rounds=1, iterations=1)
    finally:
        table.close()
    result = holder["result"]
    assert tree_to_json(result.tree) == tree_to_json(reference.tree), (
        "sharding changed the tree"
    )
    assert io.full_scans == 2
    collector.add(
        "Sharded build: F1 (noise 10%), K=1/2/4 shards (inprocess)",
        "shards",
        n_shards,
        RunResult(
            algorithm=f"BOAT@{n_shards}sh",
            workload=SPEC.describe(),
            n_tuples=N_TUPLES,
            wall_seconds=holder["seconds"],
            scans=io.full_scans,
            tuples_read=io.tuples_read,
            tree_nodes=result.tree.n_nodes,
            tree_leaves=result.tree.n_leaves,
            workers=n_shards,
        ),
    )
