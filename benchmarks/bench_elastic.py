"""Elastic shard dispatch: what failover, checkpointing and resume cost.

Three figures over one K=2 sharded workload, all asserting byte-identity
against the flat reference along the way (elasticity may only change
availability and speed, never the tree):

* **failover overhead** — a clean build versus one whose shard-1 cleanup
  unit is dropped once and failed over to the local placement; the delta
  is one re-executed unit plus the retry backoff.
* **checkpoint overhead** — a sharded build with and without per-unit
  checkpointing (`BoatConfig.checkpoint_dir`); the delta is one fsynced
  pickle + state rewrite per completed unit.
* **resume tail cost** — a build interrupted after checkpointing shard
  0's unit, then resumed; the resume re-reads only the uncheckpointed
  complement, never the restored rows.

Series are appended to ``bench_results.jsonl`` by the benchmarks
conftest.
"""

from __future__ import annotations

import dataclasses
import shutil
import tempfile
import time

import pytest

from repro.bench import RunResult, WorkloadSpec, default_configs, scaled
from repro.core import boat_build
from repro.exceptions import ShardError
from repro.recovery import RetryPolicy
from repro.shard import (
    ElasticPolicy,
    FaultyTransport,
    make_transport,
    resume_sharded_build,
    sharded_boat_build,
)
from repro.splits import ImpuritySplitSelection
from repro.storage import DiskTable, IOStats, ShardedTable, partition_table
from repro.tree import tree_to_json

N_TUPLES = scaled(40_000)
SPEC = WorkloadSpec(function_id=1, n_tuples=N_TUPLES, noise=0.1, seed=4)
FAST_RETRY = RetryPolicy(max_retries=2, base_delay_s=0.01, max_delay_s=0.05)


@pytest.fixture(scope="module")
def elastic_layout(workloads):
    """One flat reference tree + one K=2 partition of the workload."""
    table = workloads.table(SPEC)
    split, boat_cfg, _, _ = default_configs(N_TUPLES)
    method = ImpuritySplitSelection("gini")
    flat_io = IOStats()
    flat = DiskTable.open(table.path, flat_io)
    reference = boat_build(flat, method, split, boat_cfg)
    flat.close()
    root = tempfile.mkdtemp(prefix="repro-bench-elastic-")
    directory = f"{root}/k2"
    partition_table(table, directory, 2)
    yield {
        "dir": directory,
        "reference_json": tree_to_json(reference.tree),
        "split": split,
        "boat": boat_cfg,
        "method": method,
    }
    shutil.rmtree(root, ignore_errors=True)


def _run(layout, *, faults=0, checkpoint_dir=None):
    io = IOStats()
    table = ShardedTable.open(layout["dir"], io)
    config = layout["boat"]
    if checkpoint_dir is not None:
        config = dataclasses.replace(config, checkpoint_dir=checkpoint_dir)
    inner = make_transport("inprocess", table.shard_paths)
    transport = FaultyTransport(
        inner,
        "drop",
        shard_id=1,
        at_request=1,
        times=faults,
        shard_paths=table.shard_paths,
    )
    try:
        start = time.perf_counter()
        result = sharded_boat_build(
            table,
            layout["method"],
            layout["split"],
            config,
            transport=transport,
            elastic=ElasticPolicy(retry=FAST_RETRY),
        )
        seconds = time.perf_counter() - start
    finally:
        transport.close()
        table.close()
    assert tree_to_json(result.tree) == layout["reference_json"]
    return result, seconds, io


def _row(name: str, seconds: float, io: IOStats, result) -> RunResult:
    return RunResult(
        algorithm=name,
        workload=SPEC.describe(),
        n_tuples=N_TUPLES,
        wall_seconds=seconds,
        scans=io.full_scans,
        tuples_read=io.tuples_read,
        tree_nodes=result.tree.n_nodes,
        tree_leaves=result.tree.n_leaves,
        workers=2,
    )


def test_failover_overhead(benchmark, elastic_layout, collector):
    holder = {}

    def once():
        for faults in (0, 1):
            holder[faults] = _run(elastic_layout, faults=faults)

    benchmark.pedantic(once, rounds=1, iterations=1)
    for faults, (result, seconds, io) in sorted(holder.items()):
        assert result.shard_report.failovers == faults
        collector.add(
            "Elastic failover: dropped cleanup units (K=2, inprocess)",
            "dropped_units",
            faults,
            _row(f"BOAT@2sh+{faults}drop", seconds, io, result),
        )


def test_checkpoint_overhead(benchmark, elastic_layout, collector):
    holder = {}

    def once():
        holder[0] = _run(elastic_layout)
        ckpt = tempfile.mkdtemp(prefix="repro-bench-elastic-ckpt-")
        try:
            holder[1] = _run(elastic_layout, checkpoint_dir=ckpt)
        finally:
            shutil.rmtree(ckpt, ignore_errors=True)

    benchmark.pedantic(once, rounds=1, iterations=1)
    for flag, (result, seconds, io) in sorted(holder.items()):
        collector.add(
            "Sharded checkpoint: per-unit persistence on/off (K=2)",
            "checkpointing",
            flag,
            _row(f"BOAT@2sh+ckpt{flag}", seconds, io, result),
        )


def test_resume_tail_cost(benchmark, elastic_layout, collector):
    """Interrupt after shard 0's unit checkpoints, then resume.

    The resume restores shard 0's statistics from the checkpoint and
    re-reads only shard 1 — strictly less table I/O than any full build.
    """
    ckpt = tempfile.mkdtemp(prefix="repro-bench-elastic-resume-")
    holder = {}

    def strict_interrupt():
        io = IOStats()
        table = ShardedTable.open(elastic_layout["dir"], io)
        config = dataclasses.replace(
            elastic_layout["boat"], checkpoint_dir=ckpt
        )
        inner = make_transport("inprocess", table.shard_paths)
        transport = FaultyTransport(
            inner, "drop", shard_id=1, at_request=1,
            shard_paths=table.shard_paths,
        )
        try:
            with pytest.raises(ShardError):
                sharded_boat_build(
                    table,
                    elastic_layout["method"],
                    elastic_layout["split"],
                    config,
                    transport=transport,
                    elastic=ElasticPolicy(failover=False, local_fallback=False),
                )
        finally:
            transport.close()
            table.close()

    def resume():
        io = IOStats()
        table = ShardedTable.open(elastic_layout["dir"], io)
        config = dataclasses.replace(
            elastic_layout["boat"], checkpoint_dir=ckpt
        )
        try:
            start = time.perf_counter()
            result = resume_sharded_build(
                table,
                elastic_layout["method"],
                elastic_layout["split"],
                config,
            )
            holder["resume"] = (result, time.perf_counter() - start, io)
        finally:
            table.close()

    def drill():
        strict_interrupt()
        resume()

    try:
        benchmark.pedantic(drill, rounds=1, iterations=1)
    finally:
        shutil.rmtree(ckpt, ignore_errors=True)
    result, seconds, io = holder["resume"]
    assert tree_to_json(result.tree) == elastic_layout["reference_json"]
    report = result.shard_report
    assert report.resumed and report.restored_units == 1
    shard_rows = report.shard_rows
    # Restored rows are never re-read: shard 0 charges nothing, and the
    # fresh tail is bounded by one scan of shard 1 (plus finalization's
    # held-tuple re-reads, which are not table rows).
    assert report.shard_io[0].tuples_read == 0
    assert report.shard_io[1].tuples_read == shard_rows[1]
    collector.add(
        "Sharded resume: tail-only re-read after interrupt (K=2)",
        "phase",
        1,
        _row("BOAT@2sh-resume", seconds, io, result),
    )
