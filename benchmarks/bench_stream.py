"""Streaming soak benchmark: the fraud-detection loop under live load.

``examples/fraud_detection_stream.py`` walks the paper's §4 fraud
scenario offline — chunks arrive, old days expire, the pattern drifts.
This bench runs the same scenario through the full online loop: a
:class:`~repro.stream.StreamService` absorbing transaction micro-batches
(inserts + window expiry deletes, with a mid-run drift event) on its
maintenance thread while four predictor threads score traffic through
the shared batcher, and a sampler watches staleness.

Two SLOs are asserted and recorded into ``bench_results.jsonl``:

* **p99 predict latency** under sustained concurrent maintenance
  (``REPRO_STREAM_P99_SLO_MS``, default 750 ms — predictions share the
  process with live tree maintenance, so this is deliberately looser
  than the idle-batcher p99 in ``bench_serving.py``);
* **staleness** — the age of the oldest accepted-but-unapplied update
  never exceeds ``REPRO_STREAM_STALENESS_SLO_S`` (default 10 s), even
  across the drift-triggered rebuild.

The run length comes from ``REPRO_STREAM_SOAK_S`` (default 30 s; the CI
soak-smoke job pins it).  After the drill the service drains and the
maintained tree must equal a from-scratch build on the live window —
the §4 exactness guarantee, now proven at the end of a concurrent soak.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np
import pytest

from repro.bench import RunResult
from repro.config import BoatConfig, SplitConfig
from repro.core import IncrementalBoat
from repro.datagen import AgrawalConfig, AgrawalGenerator, drifted_function_1
from repro.serve import ServeConfig
from repro.splits import ImpuritySplitSelection
from repro.stream import StreamConfig, StreamService
from repro.tree import build_reference_tree, tree_diff

DURATION_S = float(os.environ.get("REPRO_STREAM_SOAK_S", "30"))
P99_SLO_MS = float(os.environ.get("REPRO_STREAM_P99_SLO_MS", "750"))
STALENESS_SLO_S = float(os.environ.get("REPRO_STREAM_STALENESS_SLO_S", "10"))

BASE_ROWS = 10_000
CHUNK_ROWS = 1_500
WINDOW_CHUNKS = 12  # expire the oldest chunk beyond this many
PREDICT_ROWS = 256
N_PREDICTORS = 4

GINI = ImpuritySplitSelection("gini")
SPLIT = SplitConfig(min_samples_split=100, min_samples_leaf=25, max_depth=8)
BOAT = BoatConfig(sample_size=2_000, bootstrap_repetitions=8, seed=11)

LEGITIMATE = AgrawalConfig(function_id=1, noise=0.1)
DRIFTED = AgrawalConfig(
    function_id=1, noise=0.1, label_fn=drifted_function_1(70.0)
)


@pytest.mark.soak
def test_stream_soak_slos(collector):
    schema = AgrawalGenerator(LEGITIMATE).schema
    base = AgrawalGenerator(LEGITIMATE, seed=0).generate(BASE_ROWS)
    maintainer = IncrementalBoat.from_chunk(base, schema, GINI, SPLIT, BOAT)
    config = StreamConfig(
        staleness_slo_s=STALENESS_SLO_S,
        serve=ServeConfig(max_batch_size=4096, max_delay_ms=1.0),
    )
    service = StreamService(maintainer, config)

    stop = threading.Event()
    errors: list[BaseException] = []
    staleness_samples: list[float] = []
    predict_counts = [0] * N_PREDICTORS
    window: list[np.ndarray] = [base]
    drift_fired_at: list[int] = []
    traffic = AgrawalGenerator(LEGITIMATE, seed=500).generate(
        PREDICT_ROWS * 64
    )

    def predictor(slot: int) -> None:
        try:
            offset = slot * PREDICT_ROWS
            while not stop.is_set():
                batch = traffic[offset : offset + PREDICT_ROWS]
                ticket = service.submit_predict(batch)
                ticket.result(timeout=120)
                predict_counts[slot] += 1
                offset = (offset + PREDICT_ROWS * N_PREDICTORS) % (
                    PREDICT_ROWS * 32
                )
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    def sampler() -> None:
        try:
            while not stop.is_set():
                _, staleness = service.loop.staleness()
                staleness_samples.append(staleness)
                time.sleep(0.02)
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    start = time.perf_counter()
    with service:
        threads = [
            threading.Thread(target=predictor, args=(slot,), daemon=True)
            for slot in range(N_PREDICTORS)
        ]
        threads.append(threading.Thread(target=sampler, daemon=True))
        for thread in threads:
            thread.start()

        # The updater runs here, on the driving thread: fresh transaction
        # chunks stream in, the window expires, and halfway through the
        # run the fraud pattern drifts for one burst.
        deadline = time.monotonic() + DURATION_S
        halfway = time.monotonic() + DURATION_S / 2
        day = 0
        while time.monotonic() < deadline:
            day += 1
            pattern = LEGITIMATE
            if not drift_fired_at and time.monotonic() >= halfway:
                pattern = DRIFTED
                drift_fired_at.append(day)
            chunk = AgrawalGenerator(pattern, seed=day).generate(CHUNK_ROWS)
            service.update("insert", chunk, timeout=300)
            window.append(chunk)
            if len(window) - 1 > WINDOW_CHUNKS:  # the base day stays
                expired = window.pop(1)
                service.update("delete", expired, timeout=300)
        service.drain(timeout=300)
        stop.set()
        for thread in threads:
            thread.join(timeout=120)
        stats = service.stats()
    elapsed = time.perf_counter() - start

    assert not errors, errors
    assert stats["maintain"]["failed_updates"] == 0
    assert stats["maintain"]["degraded"] is None
    assert stats["pending_updates"] == 0
    assert drift_fired_at, "run too short: the drift burst never fired"

    latency = stats["serve"]["latency"]
    p99_ms = latency["p99_ms"]
    worst_staleness = max(staleness_samples)
    updates = stats["maintain"]["applied_updates"]
    predictions = sum(predict_counts)
    print(
        f"\nstream soak {DURATION_S:.0f}s: {updates} updates "
        f"({stats['maintain']['rebuild_updates']} with rebuilds, drift on "
        f"day {drift_fired_at[0]}), {predictions} predict requests, "
        f"p99 {p99_ms}ms (SLO {P99_SLO_MS:.0f}ms), "
        f"staleness max {worst_staleness:.3f}s (SLO {STALENESS_SLO_S:.0f}s)"
    )
    assert p99_ms < P99_SLO_MS, (
        f"p99 predict latency SLO broken: {p99_ms}ms >= {P99_SLO_MS}ms"
    )
    assert worst_staleness < STALENESS_SLO_S, (
        f"staleness SLO broken: {worst_staleness:.3f}s >= {STALENESS_SLO_S}s"
    )

    # Post-drain exactness on the live window (base + unexpired chunks).
    live = np.concatenate(window)
    assert maintainer.n_rows == len(live)
    reference = build_reference_tree(live, schema, GINI, SPLIT)
    diff = tree_diff(maintainer.tree, reference)
    assert diff is None, f"post-drain tree diverged from rebuild: {diff}"
    tree = maintainer.tree
    maintainer.close()

    workload = (
        f"F1 fraud stream, {CHUNK_ROWS}-row chunks, "
        f"window {WINDOW_CHUNKS}, {N_PREDICTORS} predictors"
    )
    collector.add(
        "Streaming: sustained update+predict soak",
        "path",
        "predict",
        RunResult(
            algorithm="StreamService",
            workload=workload,
            n_tuples=predictions * PREDICT_ROWS,
            wall_seconds=elapsed,
            scans=0,
            tuples_read=predictions * PREDICT_ROWS,
            tree_nodes=tree.n_nodes,
            tree_leaves=tree.n_leaves,
            extra={
                "p50_ms": latency["p50_ms"],
                "p99_ms": p99_ms,
                "p99_slo_ms": P99_SLO_MS,
                "requests": float(predictions),
            },
        ),
    )
    collector.add(
        "Streaming: sustained update+predict soak",
        "path",
        "update",
        RunResult(
            algorithm="StreamService",
            workload=workload,
            n_tuples=stats["maintain"]["applied_rows"],
            wall_seconds=elapsed,
            scans=0,
            tuples_read=stats["maintain"]["applied_rows"],
            tree_nodes=tree.n_nodes,
            tree_leaves=tree.n_leaves,
            extra={
                "updates": float(updates),
                "rebuild_updates": float(stats["maintain"]["rebuild_updates"]),
                "patch_updates": float(stats["maintain"]["patch_updates"]),
                "staleness_max_s": worst_staleness,
                "staleness_slo_s": STALENESS_SLO_S,
            },
        ),
    )
